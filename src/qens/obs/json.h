#ifndef QENS_OBS_JSON_H_
#define QENS_OBS_JSON_H_

/// \file json.h
/// Minimal JSON reading/writing for the observability exporters.
///
/// Scope: exactly what the JSONL/CSV exporters, their round-trip tests and
/// the bench `--json` emitter need — objects, arrays, strings, finite
/// numbers, booleans and null, parsed into a tree of `JsonValue`. Numbers
/// are stored as double (every value the exporters emit fits); `Dump()`
/// prints them with enough digits to round-trip. Not a general-purpose
/// JSON library: no \uXXXX escapes beyond ASCII, no duplicate-key
/// detection, inputs are trusted repo-local artifacts.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "qens/common/status.h"

namespace qens::obs {

/// One JSON document node.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool v);
  static JsonValue Number(double v);
  static JsonValue String(std::string v);
  static JsonValue Array();
  static JsonValue Object();

  /// Parse one document (leading/trailing whitespace allowed; anything
  /// else after the document is an error).
  static Result<JsonValue> Parse(const std::string& text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }
  const std::vector<JsonValue>& AsArray() const { return array_; }
  const std::map<std::string, JsonValue>& AsObject() const { return object_; }

  /// Array append (requires kArray).
  void Append(JsonValue v);
  /// Object insert/overwrite (requires kObject).
  void Set(const std::string& key, JsonValue v);

  /// Object member or nullptr (requires kObject).
  const JsonValue* Find(const std::string& key) const;

  /// \name Checked typed member access for object nodes
  /// NotFound when the key is absent, InvalidArgument on a kind mismatch.
  /// @{
  Result<double> GetNumber(const std::string& key) const;
  Result<std::string> GetString(const std::string& key) const;
  Result<bool> GetBool(const std::string& key) const;
  /// @}

  /// Compact single-line serialization (object keys sorted — the map
  /// ordering — so output is deterministic).
  std::string Dump() const;

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// `"`-quoted, escaped JSON string literal for `s`.
std::string JsonQuote(const std::string& s);

/// Format a finite double the way Dump() does (round-trippable; integral
/// values print without a fraction part).
std::string JsonNumber(double v);

}  // namespace qens::obs

#endif  // QENS_OBS_JSON_H_
