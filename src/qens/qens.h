#ifndef QENS_QENS_H_
#define QENS_QENS_H_

/// \file qens.h
/// Umbrella header: the whole public API of the qens library.
///
/// For finer-grained builds include the per-module headers directly; the
/// layering is
///   common -> obs -> tensor -> {ml, clustering, query, data} -> selection
///          -> {sim, fl}
/// and nothing includes upward.

// Foundations.
#include "qens/common/config.h"       // INI-style configuration.
#include "qens/common/logging.h"      // Leveled logging.
#include "qens/common/rng.h"          // Deterministic RNG.
#include "qens/common/status.h"       // Status / Result<T> error handling.
#include "qens/common/stopwatch.h"    // Wall-clock timing.
#include "qens/common/string_util.h"  // Split/trim/parse/format.

// Observability (opt-in; zero-cost while disabled).
#include "qens/obs/export.h"        // Metrics snapshot JSON/CSV exporters.
#include "qens/obs/json.h"          // Minimal JSON read/write.
#include "qens/obs/metrics.h"       // Counters, gauges, histograms.
#include "qens/obs/round_record.h"  // Per-round federation telemetry.
#include "qens/obs/trace.h"         // Scoped wall-clock spans.

// Numerics.
#include "qens/tensor/matrix.h"       // Dense row-major Matrix.
#include "qens/tensor/stats.h"        // Welford, OLS, quantiles.
#include "qens/tensor/vector_ops.h"   // Distances, norms, weight utils.

// Machine learning.
#include "qens/ml/activation.h"
#include "qens/ml/dense_layer.h"
#include "qens/ml/loss.h"
#include "qens/ml/metrics.h"
#include "qens/ml/model_factory.h"    // Table III LR / NN configurations.
#include "qens/ml/model_io.h"         // Model wire format.
#include "qens/ml/optimizer.h"        // SGD / Adam.
#include "qens/ml/sequential_model.h"
#include "qens/ml/trainer.h"          // Keras-style training loop.

// Node-local quantization (Eq. 1).
#include "qens/clustering/cluster_summary.h"
#include "qens/clustering/kmeans.h"
#include "qens/clustering/silhouette.h"
#include "qens/clustering/streaming_quantizer.h"

// Queries and overlap geometry (Eqs. 2, Figs. 3-4).
#include "qens/query/hyper_rectangle.h"
#include "qens/query/overlap.h"
#include "qens/query/range_query.h"
#include "qens/query/selectivity_estimator.h"
#include "qens/query/workload_generator.h"

// Data handling and generators.
#include "qens/data/air_quality_generator.h"
#include "qens/data/csv.h"
#include "qens/data/dataset.h"
#include "qens/data/hospital_generator.h"
#include "qens/data/normalizer.h"
#include "qens/data/splitter.h"

// Node selection (Eqs. 3-5) and baselines.
#include "qens/selection/cluster_index.h"   // Sublinear ranking index.
#include "qens/selection/data_centric.h"
#include "qens/selection/game_theory.h"
#include "qens/selection/node_profile.h"
#include "qens/selection/policies.h"
#include "qens/selection/profile_io.h"
#include "qens/selection/ranking.h"
#include "qens/selection/ranking_cache.h"   // Leader-side ranking memo.
#include "qens/selection/stochastic.h"

// Simulated edge platform.
#include "qens/sim/cost_model.h"
#include "qens/sim/edge_environment.h"
#include "qens/sim/edge_node.h"
#include "qens/sim/network.h"

// Federated orchestration (Section IV) and the experiment harness.
#include "qens/fl/aggregation.h"
#include "qens/fl/experiment.h"
#include "qens/fl/federation.h"
#include "qens/fl/leader.h"
#include "qens/fl/participant.h"
#include "qens/fl/planner.h"

#endif  // QENS_QENS_H_
