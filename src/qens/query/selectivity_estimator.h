#ifndef QENS_QUERY_SELECTIVITY_ESTIMATOR_H_
#define QENS_QUERY_SELECTIVITY_ESTIMATOR_H_

/// \file selectivity_estimator.h
/// Leader-side estimation of how much data a query touches, computed from
/// cluster digests ALONE (no raw data): assuming per-cluster uniform
/// density, the expected number of a cluster's rows inside the query is
///
///   size_k * prod_d |q_d ∩ box_d| / |box_d|
///
/// (degenerate box dimensions contribute 1 when the query covers the
/// point, else 0). This is the privacy-preserving analog of Fig. 6's
/// "data the query actually needs" and lets the leader predict per-node
/// training volume (and hence Fig. 8-style training time) before engaging
/// anyone.

#include <cstddef>
#include <vector>

#include "qens/clustering/cluster_summary.h"
#include "qens/common/status.h"
#include "qens/query/range_query.h"

namespace qens::query {

/// Estimated rows of one cluster inside the query region (uniform-density
/// assumption). Fails on dimensional mismatch. An empty cluster yields 0.
Result<double> EstimateClusterRows(const clustering::ClusterSummary& cluster,
                                   const RangeQuery& query);

/// Per-node estimate: sum over the node's clusters.
struct NodeSelectivityEstimate {
  double estimated_rows = 0.0;        ///< Expected rows inside the query.
  size_t total_rows = 0;              ///< The node's full population.
  std::vector<double> per_cluster;    ///< One estimate per cluster.

  /// Estimated fraction of the node's data the query touches.
  double Fraction() const {
    return total_rows > 0
               ? estimated_rows / static_cast<double>(total_rows)
               : 0.0;
  }
};

/// Estimate across all clusters of a node profile's digest list.
Result<NodeSelectivityEstimate> EstimateNodeSelectivity(
    const std::vector<clustering::ClusterSummary>& clusters,
    const RangeQuery& query);

}  // namespace qens::query

#endif  // QENS_QUERY_SELECTIVITY_ESTIMATOR_H_
