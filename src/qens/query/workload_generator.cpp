#include "qens/query/workload_generator.h"

#include <algorithm>

#include "qens/common/string_util.h"

namespace qens::query {

WorkloadGenerator::WorkloadGenerator(HyperRectangle data_space,
                                     WorkloadOptions options)
    : data_space_(std::move(data_space)),
      options_(options),
      rng_(options.seed),
      next_id_(options.first_id) {}

Status WorkloadGenerator::Validate() const {
  if (options_.num_queries == 0) {
    return Status::InvalidArgument("workload: num_queries must be > 0");
  }
  if (options_.min_width_frac <= 0.0 || options_.max_width_frac > 1.0 ||
      options_.min_width_frac > options_.max_width_frac) {
    return Status::InvalidArgument(
        "workload: width fractions must satisfy 0 < min <= max <= 1");
  }
  if (data_space_.dims() == 0 || !data_space_.valid()) {
    return Status::InvalidArgument("workload: invalid data space");
  }
  if (options_.drifting_centers &&
      (options_.drift_step_frac <= 0.0 || options_.drift_step_frac > 1.0)) {
    return Status::InvalidArgument(
        "workload: drift_step_frac must be in (0, 1]");
  }
  return Status::OK();
}

Result<RangeQuery> WorkloadGenerator::Next() {
  QENS_RETURN_NOT_OK(Validate());
  const size_t d = data_space_.dims();

  // Pick the center: i.i.d. uniform, or a bounded random walk.
  std::vector<double> center(d);
  if (options_.drifting_centers && !last_center_.empty()) {
    for (size_t i = 0; i < d; ++i) {
      const Interval& space = data_space_.dim(i);
      const double step = space.length() * options_.drift_step_frac;
      double c = last_center_[i] + rng_.Uniform(-step, step);
      center[i] = std::clamp(c, space.lo, space.hi);
    }
  } else {
    for (size_t i = 0; i < d; ++i) {
      const Interval& space = data_space_.dim(i);
      center[i] = rng_.Uniform(space.lo, space.hi);
    }
  }
  last_center_ = center;

  // Pick widths and clip the box to the data space.
  std::vector<Interval> intervals(d);
  for (size_t i = 0; i < d; ++i) {
    const Interval& space = data_space_.dim(i);
    const double frac =
        rng_.Uniform(options_.min_width_frac, options_.max_width_frac);
    const double half = 0.5 * frac * space.length();
    intervals[i] = Interval(std::max(space.lo, center[i] - half),
                            std::min(space.hi, center[i] + half));
  }

  RangeQuery q;
  q.id = next_id_++;
  q.region = HyperRectangle(std::move(intervals));
  return q;
}

Result<std::vector<RangeQuery>> WorkloadGenerator::Generate() {
  QENS_RETURN_NOT_OK(Validate());
  std::vector<RangeQuery> out;
  out.reserve(options_.num_queries);
  for (size_t i = 0; i < options_.num_queries; ++i) {
    QENS_ASSIGN_OR_RETURN(RangeQuery q, Next());
    out.push_back(std::move(q));
  }
  return out;
}

}  // namespace qens::query
