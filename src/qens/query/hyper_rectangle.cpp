#include "qens/query/hyper_rectangle.h"

#include <algorithm>
#include <sstream>

#include "qens/common/string_util.h"

namespace qens::query {

Interval Interval::Intersection(const Interval& other) const {
  return Interval(std::max(lo, other.lo), std::min(hi, other.hi));
}

Interval Interval::Hull(const Interval& other) const {
  return Interval(std::min(lo, other.lo), std::max(hi, other.hi));
}

Result<HyperRectangle> HyperRectangle::FromFlatBounds(
    const std::vector<double>& flat) {
  if (flat.size() % 2 != 0) {
    return Status::InvalidArgument(
        "FromFlatBounds: flat bounds must have even length");
  }
  std::vector<Interval> intervals(flat.size() / 2);
  for (size_t d = 0; d < intervals.size(); ++d) {
    intervals[d] = Interval(flat[2 * d], flat[2 * d + 1]);
    if (!intervals[d].valid()) {
      return Status::InvalidArgument(
          StrFormat("FromFlatBounds: min > max in dimension %zu", d));
    }
  }
  return HyperRectangle(std::move(intervals));
}

Result<HyperRectangle> HyperRectangle::BoundingBox(
    const Matrix& data, const std::vector<size_t>& rows) {
  if (data.rows() == 0) {
    return Status::InvalidArgument("BoundingBox: empty matrix");
  }
  std::vector<Interval> intervals(data.cols());
  bool first = true;
  auto absorb = [&](size_t r) -> Status {
    if (r >= data.rows()) {
      return Status::OutOfRange(
          StrFormat("BoundingBox: row %zu >= %zu", r, data.rows()));
    }
    const double* p = data.RowPtr(r);
    for (size_t c = 0; c < data.cols(); ++c) {
      if (first) {
        intervals[c] = Interval(p[c], p[c]);
      } else {
        intervals[c].lo = std::min(intervals[c].lo, p[c]);
        intervals[c].hi = std::max(intervals[c].hi, p[c]);
      }
    }
    first = false;
    return Status::OK();
  };
  if (rows.empty()) {
    for (size_t r = 0; r < data.rows(); ++r) QENS_RETURN_NOT_OK(absorb(r));
  } else {
    for (size_t r : rows) QENS_RETURN_NOT_OK(absorb(r));
  }
  return HyperRectangle(std::move(intervals));
}

bool HyperRectangle::valid() const {
  for (const auto& iv : intervals_) {
    if (!iv.valid()) return false;
  }
  return !intervals_.empty();
}

bool HyperRectangle::ContainsPoint(const std::vector<double>& point) const {
  if (point.size() != intervals_.size()) return false;
  for (size_t d = 0; d < intervals_.size(); ++d) {
    if (!intervals_[d].Contains(point[d])) return false;
  }
  return true;
}

bool HyperRectangle::ContainsBox(const HyperRectangle& other) const {
  if (other.dims() != dims()) return false;
  for (size_t d = 0; d < dims(); ++d) {
    if (!intervals_[d].ContainsInterval(other.intervals_[d])) return false;
  }
  return true;
}

bool HyperRectangle::Intersects(const HyperRectangle& other) const {
  if (other.dims() != dims() || dims() == 0) return false;
  for (size_t d = 0; d < dims(); ++d) {
    if (!intervals_[d].Intersects(other.intervals_[d])) return false;
  }
  return true;
}

HyperRectangle HyperRectangle::Intersection(
    const HyperRectangle& other) const {
  const size_t d = std::min(dims(), other.dims());
  std::vector<Interval> out(d);
  for (size_t i = 0; i < d; ++i) {
    out[i] = intervals_[i].Intersection(other.intervals_[i]);
  }
  return HyperRectangle(std::move(out));
}

Result<HyperRectangle> HyperRectangle::Hull(
    const HyperRectangle& other) const {
  if (other.dims() != dims()) {
    return Status::InvalidArgument("Hull: dimensionality mismatch");
  }
  std::vector<Interval> out(dims());
  for (size_t i = 0; i < dims(); ++i) {
    out[i] = intervals_[i].Hull(other.intervals_[i]);
  }
  return HyperRectangle(std::move(out));
}

double HyperRectangle::Volume() const {
  if (intervals_.empty()) return 0.0;
  double v = 1.0;
  for (const auto& iv : intervals_) {
    if (!iv.valid()) return 0.0;
    v *= iv.length();
  }
  return v;
}

std::vector<double> HyperRectangle::ToFlatBounds() const {
  std::vector<double> flat;
  flat.reserve(2 * intervals_.size());
  for (const auto& iv : intervals_) {
    flat.push_back(iv.lo);
    flat.push_back(iv.hi);
  }
  return flat;
}

std::string HyperRectangle::ToString() const {
  std::ostringstream out;
  out << "{";
  for (size_t d = 0; d < intervals_.size(); ++d) {
    if (d > 0) out << ", ";
    out << "[" << intervals_[d].lo << ", " << intervals_[d].hi << "]";
  }
  out << "}";
  return out.str();
}

}  // namespace qens::query
