#ifndef QENS_QUERY_RANGE_QUERY_H_
#define QENS_QUERY_RANGE_QUERY_H_

/// \file range_query.h
/// An analytics query: a hyper-rectangular data-range request plus the
/// learning task to execute over the data inside the region (Section III-C:
/// "each query represents an analytic task that needs a specific amount of
/// d-dimensional data to be executed").

#include <cstdint>
#include <string>
#include <vector>

#include "qens/common/status.h"
#include "qens/query/hyper_rectangle.h"
#include "qens/tensor/matrix.h"

namespace qens::query {

/// An analytics (range) query over the feature space.
struct RangeQuery {
  uint64_t id = 0;
  HyperRectangle region;  ///< Requested data boundaries over the d features.

  size_t dims() const { return region.dims(); }

  /// Indices of rows of `features` lying inside the query region.
  /// Fails when the feature width does not match the query dimensionality.
  Result<std::vector<size_t>> MatchingRows(const Matrix& features) const;

  /// Fraction of `features` rows inside the region (0 when empty).
  Result<double> Selectivity(const Matrix& features) const;

  std::string ToString() const;
};

}  // namespace qens::query

#endif  // QENS_QUERY_RANGE_QUERY_H_
