#include "qens/query/selectivity_estimator.h"

#include "qens/common/string_util.h"

namespace qens::query {

Result<double> EstimateClusterRows(const clustering::ClusterSummary& cluster,
                                   const RangeQuery& query) {
  if (cluster.size == 0) return 0.0;
  if (cluster.bounds.dims() != query.dims()) {
    return Status::InvalidArgument(
        StrFormat("selectivity: cluster has %zu dims, query has %zu",
                  cluster.bounds.dims(), query.dims()));
  }
  double coverage = 1.0;
  for (size_t d = 0; d < query.dims(); ++d) {
    const Interval& box = cluster.bounds.dim(d);
    const Interval& q = query.region.dim(d);
    if (!box.Intersects(q)) return 0.0;
    if (box.length() <= 0.0) {
      // Degenerate dimension: all rows sit at one coordinate; the query
      // either covers it (factor 1) or it would not intersect (handled
      // above).
      continue;
    }
    coverage *= box.Intersection(q).length() / box.length();
  }
  return coverage * static_cast<double>(cluster.size);
}

Result<NodeSelectivityEstimate> EstimateNodeSelectivity(
    const std::vector<clustering::ClusterSummary>& clusters,
    const RangeQuery& query) {
  NodeSelectivityEstimate estimate;
  estimate.per_cluster.reserve(clusters.size());
  for (const auto& cluster : clusters) {
    QENS_ASSIGN_OR_RETURN(double rows, EstimateClusterRows(cluster, query));
    estimate.per_cluster.push_back(rows);
    estimate.estimated_rows += rows;
    estimate.total_rows += cluster.size;
  }
  return estimate;
}

}  // namespace qens::query
