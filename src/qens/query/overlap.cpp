#include "qens/query/overlap.h"

#include <algorithm>
#include <cassert>

#include "qens/common/string_util.h"

namespace qens::query {
namespace {

double Clamp01(double v) { return std::min(1.0, std::max(0.0, v)); }

/// Safe ratio: num/den clamped to [0,1]; `at_degenerate` when den <= 0.
double Ratio(double num, double den, double at_degenerate) {
  if (den <= 0.0) return at_degenerate;
  return Clamp01(num / den);
}

}  // namespace

const char* OverlapCaseName(OverlapCase c) {
  switch (c) {
    case OverlapCase::kQueryInsideCluster:
      return "query-inside-cluster";
    case OverlapCase::kQueryMinInside:
      return "query-min-inside";
    case OverlapCase::kQueryMaxInside:
      return "query-max-inside";
    case OverlapCase::kDisjointQueryRight:
      return "disjoint-query-right";
    case OverlapCase::kDisjointQueryLeft:
      return "disjoint-query-left";
    case OverlapCase::kClusterInsideQuery:
      return "cluster-inside-query";
  }
  return "unknown";
}

const char* OverlapModeName(OverlapMode m) {
  switch (m) {
    case OverlapMode::kFaithful:
      return "faithful";
    case OverlapMode::kNormalizedIntersection:
      return "normalized-intersection";
  }
  return "unknown";
}

DimensionOverlap ComputeDimensionOverlap(const Interval& q, const Interval& k,
                                         OverlapMode mode) {
  assert(q.valid() && k.valid());
  DimensionOverlap out;

  // Cases 4 / 5: disjoint (Fig. 4). Strict inequalities per the paper; a
  // shared endpoint counts as touching, handled by the partial cases below.
  if (q.lo > k.hi) {
    out.kase = OverlapCase::kDisjointQueryRight;
    out.value = 0.0;
    return out;
  }
  if (q.hi < k.lo) {
    out.kase = OverlapCase::kDisjointQueryLeft;
    out.value = 0.0;
    return out;
  }

  const bool cluster_contains_query = k.lo <= q.lo && q.hi <= k.hi;
  const bool query_contains_cluster = q.lo <= k.lo && k.hi <= q.hi;

  if (cluster_contains_query) {
    // Case 1 (Fig. 3a). If both are the same degenerate point, full overlap.
    out.kase = OverlapCase::kQueryInsideCluster;
    if (mode == OverlapMode::kFaithful) {
      out.value = Ratio(q.length(), k.length(), /*at_degenerate=*/1.0);
    } else {
      out.value = Ratio(q.Intersection(k).length(), k.length(), 1.0);
    }
    return out;
  }
  if (query_contains_cluster) {
    // Un-enumerated containment: the query needs everything the cluster
    // has in this dimension.
    out.kase = OverlapCase::kClusterInsideQuery;
    out.value = 1.0;
    return out;
  }
  if (q.lo >= k.lo) {
    // Case 2 (Fig. 3b): only q_min inside the cluster; q sticks out right.
    out.kase = OverlapCase::kQueryMinInside;
    if (mode == OverlapMode::kFaithful) {
      out.value = Ratio(k.hi - q.lo, q.hi - k.lo, /*at_degenerate=*/1.0);
    } else {
      out.value = Ratio(k.hi - q.lo, k.length(), 1.0);
    }
    return out;
  }
  // Case 3 (Fig. 3c): only q_max inside the cluster; q sticks out left.
  out.kase = OverlapCase::kQueryMaxInside;
  if (mode == OverlapMode::kFaithful) {
    out.value = Ratio(q.hi - k.lo, k.hi - q.lo, /*at_degenerate=*/1.0);
  } else {
    out.value = Ratio(q.hi - k.lo, k.length(), 1.0);
  }
  return out;
}

Result<OverlapBreakdown> ComputeOverlapBreakdown(const HyperRectangle& query,
                                                 const HyperRectangle& cluster,
                                                 OverlapMode mode) {
  if (query.dims() == 0 || cluster.dims() == 0) {
    return Status::InvalidArgument("overlap: zero-dimensional box");
  }
  if (query.dims() != cluster.dims()) {
    return Status::InvalidArgument(
        StrFormat("overlap: query has %zu dims, cluster has %zu", query.dims(),
                  cluster.dims()));
  }
  if (!query.valid() || !cluster.valid()) {
    return Status::InvalidArgument("overlap: invalid box (min > max)");
  }
  OverlapBreakdown out;
  out.per_dimension.resize(query.dims());
  double acc = 0.0;
  for (size_t d = 0; d < query.dims(); ++d) {
    out.per_dimension[d] =
        ComputeDimensionOverlap(query.dim(d), cluster.dim(d), mode);
    acc += out.per_dimension[d].value;
  }
  out.rate = acc / static_cast<double>(query.dims());  // Eq. 2.
  return out;
}

Result<double> ComputeOverlapRate(const HyperRectangle& query,
                                  const HyperRectangle& cluster,
                                  OverlapMode mode) {
  QENS_ASSIGN_OR_RETURN(OverlapBreakdown b,
                        ComputeOverlapBreakdown(query, cluster, mode));
  return b.rate;
}

}  // namespace qens::query
