#include "qens/query/range_query.h"

#include <sstream>

#include "qens/common/string_util.h"

namespace qens::query {

Result<std::vector<size_t>> RangeQuery::MatchingRows(
    const Matrix& features) const {
  if (features.cols() != region.dims()) {
    return Status::InvalidArgument(
        StrFormat("MatchingRows: query has %zu dims, data has %zu features",
                  region.dims(), features.cols()));
  }
  std::vector<size_t> rows;
  for (size_t r = 0; r < features.rows(); ++r) {
    const double* p = features.RowPtr(r);
    bool inside = true;
    for (size_t d = 0; d < region.dims(); ++d) {
      if (!region.dim(d).Contains(p[d])) {
        inside = false;
        break;
      }
    }
    if (inside) rows.push_back(r);
  }
  return rows;
}

Result<double> RangeQuery::Selectivity(const Matrix& features) const {
  if (features.rows() == 0) return 0.0;
  QENS_ASSIGN_OR_RETURN(std::vector<size_t> rows, MatchingRows(features));
  return static_cast<double>(rows.size()) /
         static_cast<double>(features.rows());
}

std::string RangeQuery::ToString() const {
  std::ostringstream out;
  out << "q" << id << region.ToString();
  return out.str();
}

}  // namespace qens::query
