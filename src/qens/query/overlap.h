#ifndef QENS_QUERY_OVERLAP_H_
#define QENS_QUERY_OVERLAP_H_

/// \file overlap.h
/// The paper's data-overlapping rate h_ik between a query hyper-rectangle
/// and a cluster hyper-rectangle (Section III-C, Eq. 2, Figs. 3–4).
///
/// Per dimension, five cases are enumerated by the paper:
///  1. query interval inside cluster interval
///       h = (q_max - q_min) / (k_max - k_min)                     (Fig. 3a)
///  2. only the query minimum falls inside the cluster
///       h = (k_max - q_min) / (q_max - k_min)                     (Fig. 3b)
///  3. only the query maximum falls inside the cluster
///       h = (q_max - k_min) / (k_max - q_min)                     (Fig. 3c)
///  4. disjoint, query right of cluster (q_min > k_max): h = 0     (Fig. 4a)
///  5. disjoint, query left of cluster (q_max < k_min):  h = 0     (Fig. 4b)
///
/// The configuration "cluster interval strictly inside the query interval"
/// is not enumerated by the paper; we treat it as full coverage of the
/// cluster (h = 1), the limit of case 1 as the cluster shrinks into the
/// query. All ratios are clamped into [0, 1]: the literal case-2/3 formulas
/// can exceed 1 (e.g. a sliver of query sticking out of a wide cluster) or
/// degenerate when the denominator approaches zero.
///
/// A second mode, kNormalizedIntersection, computes
///   h = |q ∩ k| / |k|
/// per dimension (the fraction of the cluster's extent the query covers) —
/// used as an ablation (bench X2) to show the selection behaviour is robust
/// to the exact ratio definition.

#include <string>

#include "qens/common/status.h"
#include "qens/query/hyper_rectangle.h"

namespace qens::query {

/// Which geometric configuration a (query, cluster) interval pair is in.
enum class OverlapCase {
  kQueryInsideCluster,   ///< Case 1 (Fig. 3a).
  kQueryMinInside,       ///< Case 2 (Fig. 3b).
  kQueryMaxInside,       ///< Case 3 (Fig. 3c).
  kDisjointQueryRight,   ///< Case 4 (Fig. 4a): q_min > k_max.
  kDisjointQueryLeft,    ///< Case 5 (Fig. 4b): q_max < k_min.
  kClusterInsideQuery,   ///< Un-enumerated containment; h = 1.
};

/// Printable name of a case ("query-inside-cluster", ...).
const char* OverlapCaseName(OverlapCase c);

/// How the per-dimension ratio is computed.
enum class OverlapMode {
  kFaithful,                ///< The paper's formulas, clamped to [0, 1].
  kNormalizedIntersection,  ///< |q ∩ k| / |k| per dimension.
};

const char* OverlapModeName(OverlapMode m);

/// One dimension's classification and ratio.
struct DimensionOverlap {
  OverlapCase kase = OverlapCase::kDisjointQueryLeft;
  double value = 0.0;  ///< In [0, 1].
};

/// Classify and score one dimension. Both intervals must be valid
/// (lo <= hi); degenerate (zero-length) intervals are handled explicitly.
DimensionOverlap ComputeDimensionOverlap(const Interval& query,
                                         const Interval& cluster,
                                         OverlapMode mode);

/// The paper's Eq. 2: h_ik = (1/d) * sum_d h_ik^d.
/// Fails when dimensionalities differ, are zero, or a box is invalid.
Result<double> ComputeOverlapRate(const HyperRectangle& query,
                                  const HyperRectangle& cluster,
                                  OverlapMode mode = OverlapMode::kFaithful);

/// Per-dimension breakdown alongside the Eq. 2 aggregate (for diagnostics
/// and the Fig. 3/4 reproduction bench).
struct OverlapBreakdown {
  std::vector<DimensionOverlap> per_dimension;
  double rate = 0.0;  ///< Eq. 2 average.
};

Result<OverlapBreakdown> ComputeOverlapBreakdown(
    const HyperRectangle& query, const HyperRectangle& cluster,
    OverlapMode mode = OverlapMode::kFaithful);

}  // namespace qens::query

#endif  // QENS_QUERY_OVERLAP_H_
