#ifndef QENS_QUERY_WORKLOAD_GENERATOR_H_
#define QENS_QUERY_WORKLOAD_GENERATOR_H_

/// \file workload_generator.h
/// Dynamic query workload in the style of Savva et al. [18] (as used by the
/// paper's evaluation, Section V-A: "Each query has been randomly created
/// over the whole data space based on the dynamic query workload method").
///
/// Queries are hyper-rectangles with random centers drawn over the data
/// space and random per-dimension widths drawn as a fraction of each
/// dimension's extent. An optional drifting-center mode makes consecutive
/// queries related (a moving analytics focus), matching [18]'s dynamic
/// workloads.

#include <cstdint>
#include <vector>

#include "qens/common/rng.h"
#include "qens/common/status.h"
#include "qens/query/range_query.h"

namespace qens::query {

/// Workload configuration.
struct WorkloadOptions {
  size_t num_queries = 200;  ///< Paper issues 200 queries (Section V-A).
  /// Per-dimension query width, as a fraction of the data-space extent,
  /// drawn uniformly from [min_width_frac, max_width_frac].
  double min_width_frac = 0.1;
  double max_width_frac = 0.5;
  /// When true, each query center performs a bounded random walk from the
  /// previous center (dynamic workload); when false, centers are i.i.d.
  /// uniform over the data space.
  bool drifting_centers = false;
  /// Random-walk step size as a fraction of each dimension's extent
  /// (only used when drifting_centers).
  double drift_step_frac = 0.1;
  uint64_t seed = 1234;
  /// First query id; queries are numbered consecutively from it.
  uint64_t first_id = 0;
};

/// Generates reproducible range-query workloads over a given data space.
class WorkloadGenerator {
 public:
  /// `data_space` must be a valid, non-degenerate box (each dimension with
  /// positive extent is sampled; zero-extent dimensions yield point ranges).
  WorkloadGenerator(HyperRectangle data_space, WorkloadOptions options);

  /// Validate options (widths in (0, 1], min <= max, num_queries > 0).
  Status Validate() const;

  /// Generate the full workload. Deterministic in (data_space, options).
  Result<std::vector<RangeQuery>> Generate();

  /// Generate a single query (advances the internal stream).
  Result<RangeQuery> Next();

  const HyperRectangle& data_space() const { return data_space_; }
  const WorkloadOptions& options() const { return options_; }

 private:
  HyperRectangle data_space_;
  WorkloadOptions options_;
  Rng rng_;
  uint64_t next_id_;
  std::vector<double> last_center_;  // For drifting mode; empty until first.
};

}  // namespace qens::query

#endif  // QENS_QUERY_WORKLOAD_GENERATOR_H_
