#ifndef QENS_QUERY_HYPER_RECTANGLE_H_
#define QENS_QUERY_HYPER_RECTANGLE_H_

/// \file hyper_rectangle.h
/// Axis-aligned intervals and hyper-rectangles. Both queries
/// (q = [q_1^min, q_1^max, ..., q_d^min, q_d^max]) and cluster boundaries
/// (k = [k_1^min, k_1^max, ...]) are hyper-rectangles in the paper
/// (Section III-C).

#include <cstddef>
#include <string>
#include <vector>

#include "qens/common/status.h"
#include "qens/tensor/matrix.h"

namespace qens::query {

/// A closed 1-D interval [lo, hi]. Valid iff lo <= hi. A point interval
/// (lo == hi) is valid with zero length.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  Interval() = default;
  Interval(double lo_in, double hi_in) : lo(lo_in), hi(hi_in) {}

  bool valid() const { return lo <= hi; }
  double length() const { return hi - lo; }
  bool Contains(double x) const { return lo <= x && x <= hi; }
  bool ContainsInterval(const Interval& other) const {
    return lo <= other.lo && other.hi <= hi;
  }
  bool Intersects(const Interval& other) const {
    return lo <= other.hi && other.lo <= hi;
  }

  /// Intersection; invalid (lo > hi) when disjoint.
  Interval Intersection(const Interval& other) const;

  /// Smallest interval covering both.
  Interval Hull(const Interval& other) const;

  bool operator==(const Interval& other) const {
    return lo == other.lo && hi == other.hi;
  }
};

/// An axis-aligned box: one Interval per dimension.
class HyperRectangle {
 public:
  HyperRectangle() = default;

  /// Box with `dims` unit intervals [0, 0].
  explicit HyperRectangle(size_t dims) : intervals_(dims) {}

  explicit HyperRectangle(std::vector<Interval> intervals)
      : intervals_(std::move(intervals)) {}

  /// From the paper's flat layout [min_1, max_1, ..., min_d, max_d].
  /// Fails on odd length or any min > max.
  static Result<HyperRectangle> FromFlatBounds(
      const std::vector<double>& flat);

  /// Tight bounding box of a set of rows of `data`. Fails when the matrix
  /// has no rows or an index is out of range; with an empty `rows` list,
  /// bounds all rows.
  static Result<HyperRectangle> BoundingBox(
      const Matrix& data, const std::vector<size_t>& rows = {});

  size_t dims() const { return intervals_.size(); }
  bool empty() const { return intervals_.empty(); }

  const Interval& dim(size_t i) const { return intervals_[i]; }
  Interval& dim(size_t i) { return intervals_[i]; }

  const std::vector<Interval>& intervals() const { return intervals_; }

  /// All per-dimension intervals valid (lo <= hi).
  bool valid() const;

  /// True iff the d-dimensional point (size must equal dims()) is inside.
  bool ContainsPoint(const std::vector<double>& point) const;

  /// True iff `other` is fully inside this box (per-dimension containment).
  bool ContainsBox(const HyperRectangle& other) const;

  /// True iff the boxes intersect in every dimension.
  bool Intersects(const HyperRectangle& other) const;

  /// Per-dimension intersection. Result may contain invalid intervals where
  /// the boxes are disjoint in that dimension.
  HyperRectangle Intersection(const HyperRectangle& other) const;

  /// Smallest box covering both. Fails on dimensionality mismatch.
  Result<HyperRectangle> Hull(const HyperRectangle& other) const;

  /// Product of side lengths (0 when any side has zero length).
  double Volume() const;

  /// Flat paper layout [min_1, max_1, ..., min_d, max_d].
  std::vector<double> ToFlatBounds() const;

  /// Serialized size in bytes when shipped to the leader (2 doubles/dim).
  size_t WireBytes() const { return intervals_.size() * 2 * sizeof(double); }

  std::string ToString() const;

  bool operator==(const HyperRectangle& other) const {
    return intervals_ == other.intervals_;
  }

 private:
  std::vector<Interval> intervals_;
};

}  // namespace qens::query

#endif  // QENS_QUERY_HYPER_RECTANGLE_H_
