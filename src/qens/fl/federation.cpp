#include "qens/fl/federation.h"

#include <algorithm>
#include <future>
#include <limits>

#include "qens/common/rng.h"
#include "qens/common/stopwatch.h"
#include "qens/common/string_util.h"
#include "qens/data/splitter.h"
#include "qens/ml/loss.h"
#include "qens/ml/model_io.h"
#include "qens/obs/metrics.h"
#include "qens/obs/trace.h"
#include "qens/selection/policies.h"

namespace qens::fl {
namespace {

/// Apply a model-space corruption to a returned model, in place. Label
/// poisoning is handled participant-side; kNone and kLabelFlipPoisoning
/// leave the model untouched.
void ApplyModelCorruption(ml::SequentialModel* model,
                          sim::CorruptionKind kind, double gamma,
                          const ml::SequentialModel& reference) {
  if (kind == sim::CorruptionKind::kNone ||
      kind == sim::CorruptionKind::kLabelFlipPoisoning) {
    return;
  }
  std::vector<double> params = model->GetParameters();
  switch (kind) {
    case sim::CorruptionKind::kNanUpdate:
      for (double& p : params) p = std::numeric_limits<double>::quiet_NaN();
      break;
    case sim::CorruptionKind::kInfUpdate:
      for (double& p : params) p = std::numeric_limits<double>::infinity();
      break;
    case sim::CorruptionKind::kSignFlip:
      for (double& p : params) p = -p;
      break;
    case sim::CorruptionKind::kScaledUpdate: {
      const std::vector<double> ref = reference.GetParameters();
      for (size_t i = 0; i < params.size(); ++i) {
        params[i] = ref[i] + gamma * (params[i] - ref[i]);
      }
      break;
    }
    case sim::CorruptionKind::kNone:
    case sim::CorruptionKind::kLabelFlipPoisoning:
      break;
  }
  (void)model->SetParameters(params);  // Same size: cannot fail.
}

/// Inter-round merge under the configured robust aggregator.
Result<ml::SequentialModel> MergeRobust(
    const ByzantineOptions& byz,
    const std::vector<ml::SequentialModel>& models,
    const std::vector<double>& weights,
    const ml::SequentialModel& reference) {
  switch (byz.aggregator) {
    case AggregationKind::kFedAvgParameters:
      return FedAvgParameters(models, weights);
    case AggregationKind::kCoordinateMedian:
      return CoordinateMedianParameters(models);
    case AggregationKind::kTrimmedMean:
      return TrimmedMeanParameters(models, byz.trim_beta);
    case AggregationKind::kNormClippedFedAvg:
      return FedAvgNormClipped(models, weights, reference, byz.clip_norm);
    default:
      return Status::Internal("MergeRobust: non-parameter-space aggregator");
  }
}

}  // namespace

double QueryOutcome::DataFractionOfSelected() const {
  return samples_selected > 0 ? static_cast<double>(samples_used) /
                                    static_cast<double>(samples_selected)
                              : 0.0;
}

double QueryOutcome::DataFractionOfAll() const {
  return samples_all_nodes > 0 ? static_cast<double>(samples_used) /
                                     static_cast<double>(samples_all_nodes)
                               : 0.0;
}

Result<Federation> Federation::Create(std::vector<data::Dataset> node_data,
                                      const FederationOptions& options) {
  if (node_data.empty()) {
    return Status::InvalidArgument("federation: no nodes");
  }
  if (options.test_fraction <= 0.0 || options.test_fraction >= 1.0) {
    return Status::InvalidArgument(
        "federation: test_fraction must be in (0, 1)");
  }

  std::vector<data::Dataset> train_shards;
  std::vector<data::Dataset> test_shards;
  train_shards.reserve(node_data.size());
  test_shards.reserve(node_data.size());
  for (size_t i = 0; i < node_data.size(); ++i) {
    QENS_ASSIGN_OR_RETURN(
        data::TrainTestSplit split,
        data::SplitTrainTest(node_data[i], options.test_fraction,
                             options.seed + 31 * i));
    train_shards.push_back(std::move(split.train));
    test_shards.push_back(std::move(split.test));
  }

  // Raw-unit global data space: hull of every node's (train) feature box.
  QENS_ASSIGN_OR_RETURN(query::HyperRectangle raw_space,
                        train_shards[0].FeatureSpace());
  for (size_t i = 1; i < train_shards.size(); ++i) {
    QENS_ASSIGN_OR_RETURN(query::HyperRectangle space,
                          train_shards[i].FeatureSpace());
    QENS_ASSIGN_OR_RETURN(raw_space, raw_space.Hull(space));
  }

  // Leader-coordinated min-max normalization: the scaling constants are the
  // global per-dimension bounds, which in the real protocol come straight
  // from the cluster boundaries the nodes already publish.
  std::optional<data::Normalizer> feature_norm;
  std::optional<data::Normalizer> target_norm;
  if (options.normalize) {
    // Pool features/targets to fit the global bounds (numerically equal to
    // the hull of per-node bounds for min-max scaling).
    data::Dataset pooled = train_shards[0];
    for (size_t i = 1; i < train_shards.size(); ++i) {
      QENS_ASSIGN_OR_RETURN(pooled, pooled.Concat(train_shards[i]));
    }
    QENS_ASSIGN_OR_RETURN(
        data::Normalizer fn,
        data::Normalizer::Fit(pooled.features(), data::ScalingKind::kMinMax));
    QENS_ASSIGN_OR_RETURN(
        data::Normalizer tn,
        data::Normalizer::Fit(pooled.targets(), data::ScalingKind::kMinMax));
    feature_norm = std::move(fn);
    target_norm = std::move(tn);

    auto transform_shard = [&](data::Dataset* shard) -> Status {
      QENS_ASSIGN_OR_RETURN(Matrix f,
                            feature_norm->Transform(shard->features()));
      QENS_ASSIGN_OR_RETURN(Matrix t, target_norm->Transform(shard->targets()));
      QENS_ASSIGN_OR_RETURN(
          *shard, data::Dataset::Create(std::move(f), std::move(t),
                                        shard->feature_names(),
                                        shard->target_name()));
      return Status::OK();
    };
    for (auto& shard : train_shards) QENS_RETURN_NOT_OK(transform_shard(&shard));
    for (auto& shard : test_shards) QENS_RETURN_NOT_OK(transform_shard(&shard));
  }

  QENS_ASSIGN_OR_RETURN(
      sim::EdgeEnvironment environment,
      sim::EdgeEnvironment::Create(std::move(train_shards),
                                   options.environment));
  QENS_ASSIGN_OR_RETURN(std::vector<selection::NodeProfile> profiles,
                        environment.Profiles());
  Leader leader(std::move(profiles), options.ranking, options.query_driven);
  const size_t num_nodes = environment.num_nodes();
  Federation federation(std::move(environment), std::move(test_shards),
                        std::move(leader), options, std::move(raw_space),
                        std::move(feature_norm), std::move(target_norm));

  if (options.fault_tolerance.enabled) {
    if (options.fault_tolerance.max_send_attempts == 0) {
      return Status::InvalidArgument(
          "federation: max_send_attempts must be >= 1");
    }
    if (options.fault_tolerance.min_quorum_frac < 0.0 ||
        options.fault_tolerance.min_quorum_frac > 1.0) {
      return Status::InvalidArgument(
          "federation: min_quorum_frac must be in [0, 1]");
    }
    QENS_ASSIGN_OR_RETURN(
        sim::FaultPlan plan,
        sim::FaultPlan::Create(num_nodes, options.fault_tolerance.faults));
    federation.fault_injector_.emplace(std::move(plan));
  }
  if (options.byzantine.enabled) {
    const ByzantineOptions& byz = options.byzantine;
    switch (byz.aggregator) {
      case AggregationKind::kFedAvgParameters:
      case AggregationKind::kCoordinateMedian:
      case AggregationKind::kTrimmedMean:
      case AggregationKind::kNormClippedFedAvg:
        break;
      default:
        return Status::InvalidArgument(
            StrFormat("federation: byzantine aggregator must be "
                      "parameter-space, got %s",
                      AggregationKindName(byz.aggregator)));
    }
    if (!(byz.trim_beta >= 0.0) || byz.trim_beta >= 0.5) {
      return Status::InvalidArgument(
          "federation: byzantine trim_beta must be in [0, 0.5)");
    }
    if (byz.aggregator == AggregationKind::kNormClippedFedAvg &&
        byz.clip_norm <= 0.0) {
      return Status::InvalidArgument(
          "federation: byzantine clip_norm must be > 0");
    }
    QENS_ASSIGN_OR_RETURN(UpdateValidator validator,
                          UpdateValidator::Create(byz.validator));
    federation.validator_.emplace(std::move(validator));
    federation.quarantine_until_.assign(num_nodes, 0);
  }
  return federation;
}

Result<query::RangeQuery> Federation::InternalQuery(
    const query::RangeQuery& query) const {
  if (!feature_norm_.has_value()) return query;
  query::RangeQuery internal = query;
  QENS_ASSIGN_OR_RETURN(internal.region,
                        feature_norm_->TransformBox(query.region));
  return internal;
}

double Federation::DenormalizeMse(double mse) const {
  if (!target_norm_.has_value()) return mse;
  const double scale = target_norm_->scale()[0];  // y_norm = (y - off) * scale
  if (scale == 0.0) return mse;
  return mse / (scale * scale);
}

Result<data::Dataset> Federation::QueryRegionTestData(
    const query::RangeQuery& query) const {
  QENS_ASSIGN_OR_RETURN(query::RangeQuery internal, InternalQuery(query));
  std::optional<data::Dataset> pooled;
  for (const auto& shard : test_shards_) {
    QENS_ASSIGN_OR_RETURN(std::vector<size_t> rows,
                          internal.MatchingRows(shard.features()));
    if (rows.empty()) continue;
    QENS_ASSIGN_OR_RETURN(data::Dataset subset, shard.SelectRows(rows));
    if (!pooled.has_value()) {
      pooled = std::move(subset);
    } else {
      QENS_ASSIGN_OR_RETURN(pooled.value(), pooled->Concat(subset));
    }
  }
  if (!pooled.has_value()) {
    return Status::NotFound("no test rows inside the query region");
  }
  return std::move(pooled.value());
}

Result<std::vector<size_t>> Federation::ChooseNodes(
    const query::RangeQuery& query, selection::PolicyKind policy,
    QueryOutcome* outcome) {
  const size_t n = environment_.num_nodes();
  switch (policy) {
    case selection::PolicyKind::kQueryDriven: {
      QENS_ASSIGN_OR_RETURN(SelectionDecision decision,
                            leader_.Decide(query));
      outcome->selected_rankings = decision.SelectedRankings();
      return decision.SelectedNodeIds();
    }
    case selection::PolicyKind::kRandom: {
      // A fresh stream per query keeps random draws independent across the
      // workload but reproducible for the federation seed.
      Rng rng = Rng(options_.seed ^ 0x5eed).Fork(++random_stream_);
      const size_t l = std::min(options_.random_l, n);
      return selection::SelectRandom(n, std::max<size_t>(1, l), &rng);
    }
    case selection::PolicyKind::kAllNodes:
      return selection::SelectAllNodes(n);
    case selection::PolicyKind::kDataCentric: {
      // Query-agnostic device scoring [8]: data volume/diversity, compute,
      // and link quality — note the query never enters the decision.
      std::vector<selection::NodeProfile> profiles;
      std::vector<double> capacities, latencies;
      for (size_t i = 0; i < n; ++i) {
        QENS_ASSIGN_OR_RETURN(const selection::NodeProfile* p,
                              environment_.node(i).profile());
        profiles.push_back(*p);
        capacities.push_back(environment_.node(i).capacity());
        latencies.push_back(
            environment_.cost_model().options().link_latency_s);
      }
      return selection::SelectDataCentric(profiles, capacities, latencies,
                                          options_.data_centric);
    }
    case selection::PolicyKind::kStochastic: {
      // Fair stochastic selection [12]: ranking-weighted draw with a
      // fairness boost; stateful across the query stream.
      if (!stochastic_.has_value()) {
        selection::StochasticOptions so = options_.stochastic;
        so.seed = options_.seed ^ 0xfa12;
        stochastic_.emplace(n, so);
      }
      QENS_ASSIGN_OR_RETURN(std::vector<selection::NodeRank> ranks,
                            leader_.Rank(query));
      return stochastic_->Select(ranks);
    }
    case selection::PolicyKind::kGameTheory: {
      // GT probes with the leader's local (train) data against every node's
      // local data — a full pre-round per query (its defining cost).
      std::vector<data::Dataset> node_sets;
      node_sets.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        node_sets.push_back(environment_.node(i).local_data());
      }
      selection::GameTheoryOptions gt = options_.game_theory;
      gt.model = options_.hyper.kind;
      gt.seed = options_.seed + query.id;
      QENS_ASSIGN_OR_RETURN(
          selection::GameTheorySelection sel,
          selection::RunGameTheorySelection(
              environment_.node(environment_.leader_index()).local_data(),
              node_sets, gt));
      outcome->gt_preround_seconds = sel.pre_round_seconds;
      // The pre-round is leader-side training over its own data; charge it
      // through the cost model as well.
      outcome->sim_time_total += environment_.cost_model().TrainingSeconds(
          environment_.node(environment_.leader_index()).NumSamples(),
          options_.hyper.epochs,
          environment_.node(environment_.leader_index()).capacity());
      return sel.selected;
    }
  }
  return Status::Internal("ChooseNodes: unhandled policy");
}

const std::vector<size_t>& Federation::StochasticParticipation() {
  if (!stochastic_.has_value()) {
    selection::StochasticOptions so = options_.stochastic;
    so.seed = options_.seed ^ 0xfa12;
    stochastic_.emplace(environment_.num_nodes(), so);
  }
  return stochastic_->participation_counts();
}

Result<QueryOutcome> Federation::RunQuery(const query::RangeQuery& query,
                                          selection::PolicyKind policy,
                                          bool data_selectivity) {
  return RunQueryMultiRound(query, policy, data_selectivity, /*rounds=*/1);
}

Result<QueryOutcome> Federation::RunQueryMultiRound(
    const query::RangeQuery& query, selection::PolicyKind policy,
    bool data_selectivity, size_t rounds) {
  if (rounds == 0) {
    return Status::InvalidArgument("RunQueryMultiRound: rounds must be > 0");
  }
  obs::TraceSpan query_span("federation.query");
  const bool obs_on = obs::MetricsRegistry::Enabled();
  obs::Count("federation.queries");
  Stopwatch watch;
  QueryOutcome outcome;
  outcome.query = query;
  outcome.policy = policy;
  outcome.data_selectivity = data_selectivity;
  outcome.rounds = rounds;
  outcome.samples_all_nodes = environment_.TotalSamples();

  // All internal work (ranking, matching, training) happens in the
  // federation's internal (normalized) space.
  QENS_ASSIGN_OR_RETURN(query::RangeQuery internal, InternalQuery(query));

  // Ground truth: pooled held-out rows inside the query region.
  Result<data::Dataset> test = QueryRegionTestData(query);
  if (!test.ok()) {
    obs::Count("federation.queries.skipped");
    outcome.skipped = true;
    outcome.wall_seconds = watch.ElapsedSeconds();
    return outcome;
  }
  outcome.test_rows = test->NumSamples();

  QENS_ASSIGN_OR_RETURN(std::vector<size_t> chosen,
                        ChooseNodes(internal, policy, &outcome));

  // Volatile clients: selected nodes may be offline for this query.
  if (options_.dropout_rate > 0.0) {
    if (options_.dropout_rate > 1.0) {
      return Status::InvalidArgument("dropout_rate must be in [0, 1]");
    }
    Rng drop_rng = Rng(options_.seed ^ 0xd20f).Fork(++dropout_stream_);
    std::vector<size_t> alive;
    for (size_t id : chosen) {
      if (drop_rng.Bernoulli(options_.dropout_rate)) {
        outcome.dropped_nodes.push_back(id);
      } else {
        alive.push_back(id);
      }
    }
    chosen = std::move(alive);
  }
  if (chosen.empty()) {
    obs::Count("federation.queries.skipped");
    outcome.skipped = true;
    outcome.wall_seconds = watch.ElapsedSeconds();
    return outcome;
  }

  // Rankings for selectivity: the query-driven policy computed them in
  // ChooseNodes; for baselines with selectivity requested we still need
  // per-node supporting clusters, so rank on demand.
  std::vector<selection::NodeRank> all_ranks;
  if (data_selectivity) {
    QENS_ASSIGN_OR_RETURN(all_ranks, leader_.Rank(internal));
  }
  auto rank_of_node = [&](size_t node_id) -> const selection::NodeRank* {
    for (const auto& r : all_ranks) {
      if (r.node_id == node_id) return &r;
    }
    return nullptr;
  };

  // Broadcast the initial global model w.
  Rng init_rng(options_.seed * 1000003 + query.id);
  QENS_ASSIGN_OR_RETURN(
      ml::SequentialModel global,
      ml::BuildModel(options_.hyper,
                     environment_.node(0).local_data().NumFeatures(),
                     &init_rng));
  const size_t model_bytes = ml::SerializedModelBytes(global);

  LocalTrainOptions local_options;
  local_options.hyper = options_.hyper;
  local_options.epochs_per_cluster = options_.epochs_per_cluster;
  local_options.seed = options_.seed + query.id;

  // Assemble the per-node training jobs once (node id, Eq. 7 weight, and
  // the supporting-cluster set under data selectivity).
  struct TrainJob {
    size_t node_id;
    double rank_weight;
    bool selective;
    std::vector<size_t> supporting;
  };
  std::vector<TrainJob> jobs;
  for (size_t node_id : chosen) {
    TrainJob job{node_id, 1.0, data_selectivity, {}};
    if (data_selectivity) {
      const selection::NodeRank* rank = rank_of_node(node_id);
      if (rank == nullptr || rank->supporting_clusters == 0) {
        // Nothing in this node matches the query; it contributes no model.
        continue;
      }
      job.rank_weight = rank->ranking;
      job.supporting = rank->SupportingClusterIds();
    }
    jobs.push_back(std::move(job));
  }
  if (jobs.empty()) {
    // No selected node can contribute a model (e.g. nothing supports the
    // query under selectivity): the query is unanswerable, faults or not.
    obs::Count("federation.queries.skipped");
    outcome.skipped = true;
    outcome.wall_seconds = watch.ElapsedSeconds();
    return outcome;
  }

  // Fault layer (opt-in). With no injector the loop below reproduces the
  // fault-free protocol exactly: every job trains, every send succeeds.
  const FaultToleranceOptions& ft = options_.fault_tolerance;
  sim::FaultInjector* injector =
      fault_injector_.has_value() ? &*fault_injector_ : nullptr;
  const size_t leader_id = environment_.leader_index();

  // Byzantine layer (opt-in): validator + quarantine + robust aggregation.
  const ByzantineOptions& byz = options_.byzantine;
  const bool byz_on = byz.enabled;

  // Per-job fate this round, precomputed from the injector's pure schedule
  // so training can still fan out in parallel.
  struct JobFate {
    bool quarantined = false;   ///< Sat out: still serving a quarantine.
    bool unavailable = false;   ///< Crashed or transiently offline.
    size_t down_attempts = 1;   ///< model-down transmissions performed.
    bool down_delivered = true;
    double slowdown = 1.0;
    sim::CorruptionKind corruption = sim::CorruptionKind::kNone;
  };

  auto record_once = [](std::vector<size_t>* list, size_t node_id) {
    if (std::find(list->begin(), list->end(), node_id) == list->end()) {
      list->push_back(node_id);
    }
  };

  std::vector<ml::SequentialModel> local_models;
  std::vector<double> eq7_weights;
  std::vector<double> fedavg_weights;  // Samples trained, per local model.
  std::vector<size_t> survivor_jobs;   // Job index behind each local model.
  std::vector<bool> final_alive(jobs.size(), false);
  for (size_t round = 0; round < rounds; ++round) {
    obs::TraceSpan round_span("federation.round");
    obs::Count("federation.rounds");
    local_models.clear();
    eq7_weights.clear();
    fedavg_weights.clear();
    survivor_jobs.clear();
    std::fill(final_alive.begin(), final_alive.end(), false);
    double round_parallel = 0.0;
    double round_train = 0.0;
    double round_comm = 0.0;

    obs::RoundRecord record;
    if (obs_on) {
      record.query_id = query.id;
      record.round = round;
      record.policy = selection::PolicyKindName(policy);
      record.aggregation = round + 1 < rounds ? "fedavg" : "ensemble";
      record.engaged = jobs.size();
      record.nodes.reserve(jobs.size());
    }
    auto record_node = [&](size_t node_id, obs::NodeFate node_fate,
                           double train_s, double comm_s, size_t samples,
                           bool straggler) {
      if (!obs_on) return;
      obs::NodeRoundStat stat;
      stat.node_id = node_id;
      stat.fate = node_fate;
      stat.train_seconds = train_s;
      stat.comm_seconds = comm_s;
      stat.samples_used = samples;
      stat.straggler = straggler;
      record.nodes.push_back(stat);
    };

    // Evaluate this round's fate for every job before any training runs.
    const size_t fault_round = injector ? fault_round_++ : 0;
    const size_t byz_round = byz_on ? byz_round_++ : 0;
    std::vector<JobFate> fates(jobs.size());
    if (byz_on && byz.quarantine_rounds > 0) {
      for (size_t j = 0; j < jobs.size(); ++j) {
        if (quarantine_until_[jobs[j].node_id] > byz_round) {
          fates[j].quarantined = true;
        }
      }
    }
    if (injector) {
      for (size_t j = 0; j < jobs.size(); ++j) {
        JobFate& fate = fates[j];
        if (fate.quarantined) continue;
        if (!injector->IsAvailable(jobs[j].node_id, fault_round)) {
          fate.unavailable = true;
          continue;
        }
        fate.slowdown = injector->SlowdownFactor(jobs[j].node_id, fault_round);
        fate.corruption = injector->CorruptionFor(jobs[j].node_id, fault_round);
        fate.down_delivered = false;
        fate.down_attempts = 0;
        for (size_t attempt = 0; attempt < ft.max_send_attempts; ++attempt) {
          ++fate.down_attempts;
          if (!injector->LoseMessage(leader_id, jobs[j].node_id, fault_round,
                                     attempt)) {
            fate.down_delivered = true;
            break;
          }
        }
      }
    }
    auto job_trains = [&](size_t j) {
      return !fates[j].quarantined && !fates[j].unavailable &&
             fates[j].down_delivered;
    };

    // Run every training job (concurrently when configured), then account
    // the results in job order so outcomes stay deterministic.
    auto run_job = [&](const TrainJob& job, sim::CorruptionKind corruption)
        -> Result<LocalTrainResult> {
      const sim::EdgeNode& node = environment_.node(job.node_id);
      LocalTrainOptions job_options = local_options;
      if (corruption == sim::CorruptionKind::kLabelFlipPoisoning) {
        job_options.poison_labels = true;
      }
      if (job.selective) {
        return TrainOnSupportingClusters(node, global, job.supporting,
                                         job_options,
                                         environment_.cost_model());
      }
      return TrainOnFullData(node, global, job_options,
                             environment_.cost_model());
    };
    std::vector<std::optional<Result<LocalTrainResult>>> results(jobs.size());
    if (options_.parallel_local_training && jobs.size() > 1) {
      // Jobs go onto the shared pool (created once, reused across rounds
      // and queries) instead of spawning one thread per node per round.
      // Oversubscribed rounds (jobs > workers) simply queue; results are
      // consumed in submission order, so outcomes are independent of both
      // the worker count and the completion order.
      if (pool_ == nullptr) {
        const size_t workers = options_.max_parallel_nodes > 0
                                   ? options_.max_parallel_nodes
                                   : common::ThreadPool::DefaultThreadCount();
        pool_ = std::make_unique<common::ThreadPool>(workers);
      }
      std::vector<std::future<Result<LocalTrainResult>>> futures(jobs.size());
      for (size_t j = 0; j < jobs.size(); ++j) {
        if (!job_trains(j)) continue;
        const TrainJob& job = jobs[j];
        const sim::CorruptionKind corruption = fates[j].corruption;
        futures[j] = pool_->Submit([&run_job, &job, corruption] {
          return run_job(job, corruption);
        });
      }
      for (size_t j = 0; j < jobs.size(); ++j) {
        if (futures[j].valid()) results[j] = futures[j].get();
      }
    } else {
      for (size_t j = 0; j < jobs.size(); ++j) {
        if (job_trains(j)) results[j] = run_job(jobs[j], fates[j].corruption);
      }
    }

    for (size_t j = 0; j < jobs.size(); ++j) {
      const TrainJob& job = jobs[j];
      const size_t node_id = job.node_id;
      const sim::EdgeNode& node = environment_.node(node_id);
      if (round == 0) outcome.samples_selected += node.NumSamples();
      const double rank_weight = job.rank_weight;
      const JobFate& fate = fates[j];

      if (fate.quarantined) {
        // Serving a quarantine: skipped without a reliability penalty (the
        // node was never asked to train this round).
        record_once(&outcome.quarantined_nodes, node_id);
        ++outcome.quarantined_skips;
        obs::Count("federation.nodes.quarantined");
        record_node(node_id, obs::NodeFate::kQuarantined, 0.0, 0.0, 0, false);
        if (obs_on) ++record.quarantined;
        continue;
      }
      if (fate.unavailable) {
        // Crashed or offline: contributes nothing, costs nothing.
        record_once(&outcome.failed_nodes, node_id);
        leader_.RecordRoundResult(node_id, Leader::RoundResult::kFailed);
        obs::Count("federation.nodes.unavailable");
        record_node(node_id, obs::NodeFate::kUnavailable, 0.0, 0.0, 0, false);
        continue;
      }
      if (results[j].has_value()) {
        QENS_RETURN_NOT_OK(results[j]->status());
      }

      // Model-down transfer(s): lost transmissions are retried with
      // backoff; all time is accounted against the round.
      double down_seconds = 0.0;
      for (size_t attempt = 0; attempt < fate.down_attempts; ++attempt) {
        const bool lost =
            attempt + 1 < fate.down_attempts || !fate.down_delivered;
        down_seconds += environment_.network().Send(
            leader_id, node_id, model_bytes,
            lost ? "model-down-lost" : "model-down");
        if (lost) {
          down_seconds += ft.retry_backoff_s;
          ++outcome.messages_lost;
          obs::Count("federation.messages.lost");
        }
      }
      outcome.send_retries += fate.down_attempts - 1;
      outcome.sim_time_comm += down_seconds;
      round_comm += down_seconds;
      if (!fate.down_delivered) {
        // The global model never reached the node: no training happened,
        // but the leader still spent the failed transmissions + backoff on
        // this participant, so that wait is on the round's critical path
        // (capped at the deadline like any other wait).
        record_once(&outcome.failed_nodes, node_id);
        leader_.RecordRoundResult(node_id, Leader::RoundResult::kFailed);
        round_parallel = std::max(
            round_parallel, ft.round_deadline_s > 0.0
                                ? std::min(down_seconds, ft.round_deadline_s)
                                : down_seconds);
        obs::Count("federation.nodes.send_failed");
        record_node(node_id, obs::NodeFate::kSendFailed, 0.0, down_seconds, 0,
                    false);
        continue;
      }

      LocalTrainResult& result = results[j]->value();
      if (injector && fate.corruption != sim::CorruptionKind::kNone) {
        // Byzantine node: the model that goes on the wire is the corrupted
        // one (upload bytes and all downstream screening see it).
        ApplyModelCorruption(&result.model, fate.corruption,
                             injector->plan().options().corruption_gamma,
                             global);
      }
      if (round == 0) outcome.samples_used += result.samples_used;
      const double train_seconds = result.sim_train_seconds * fate.slowdown;
      outcome.sim_time_total += train_seconds;
      round_train += train_seconds;
      double node_seconds = down_seconds + train_seconds;

      // Deadline gate 1: a straggler whose download + training already
      // exceeds the deadline is cut before it even uploads; the leader
      // stops waiting at the deadline.
      if (injector && ft.round_deadline_s > 0.0 &&
          node_seconds > ft.round_deadline_s) {
        record_once(&outcome.deadline_missed_nodes, node_id);
        leader_.RecordRoundResult(node_id,
                                  Leader::RoundResult::kMissedDeadline);
        round_parallel = std::max(round_parallel, ft.round_deadline_s);
        obs::Count("federation.nodes.missed_deadline");
        record_node(node_id, obs::NodeFate::kMissedDeadline, train_seconds,
                    down_seconds, result.samples_used, fate.slowdown > 1.0);
        continue;
      }

      // Model-up transfer(s), with the same retry/backoff policy.
      const size_t up_bytes = ml::SerializedModelBytes(result.model);
      bool up_delivered = true;
      size_t up_attempts = 1;
      if (injector) {
        up_delivered = false;
        up_attempts = 0;
        for (size_t attempt = 0; attempt < ft.max_send_attempts; ++attempt) {
          ++up_attempts;
          if (!injector->LoseMessage(node_id, leader_id, fault_round,
                                     attempt)) {
            up_delivered = true;
            break;
          }
        }
      }
      double up_seconds = 0.0;
      for (size_t attempt = 0; attempt < up_attempts; ++attempt) {
        const bool lost = attempt + 1 < up_attempts || !up_delivered;
        up_seconds += environment_.network().Send(
            node_id, leader_id, up_bytes, lost ? "model-up-lost" : "model-up");
        if (lost) {
          up_seconds += ft.retry_backoff_s;
          ++outcome.messages_lost;
          obs::Count("federation.messages.lost");
        }
      }
      outcome.send_retries += up_attempts - 1;
      outcome.sim_time_comm += up_seconds;
      round_comm += up_seconds;
      node_seconds += up_seconds;

      if (!up_delivered) {
        record_once(&outcome.failed_nodes, node_id);
        leader_.RecordRoundResult(node_id, Leader::RoundResult::kFailed);
        round_parallel = std::max(
            round_parallel, ft.round_deadline_s > 0.0
                                ? std::min(node_seconds, ft.round_deadline_s)
                                : node_seconds);
        obs::Count("federation.nodes.send_failed");
        record_node(node_id, obs::NodeFate::kSendFailed, train_seconds,
                    down_seconds + up_seconds, result.samples_used,
                    fate.slowdown > 1.0);
        continue;
      }
      // Deadline gate 2: the upload itself can push a participant past
      // the deadline (e.g. retry backoff) — the model arrives too late.
      if (injector && ft.round_deadline_s > 0.0 &&
          node_seconds > ft.round_deadline_s) {
        record_once(&outcome.deadline_missed_nodes, node_id);
        leader_.RecordRoundResult(node_id,
                                  Leader::RoundResult::kMissedDeadline);
        round_parallel = std::max(round_parallel, ft.round_deadline_s);
        obs::Count("federation.nodes.missed_deadline");
        record_node(node_id, obs::NodeFate::kMissedDeadline, train_seconds,
                    down_seconds + up_seconds, result.samples_used,
                    fate.slowdown > 1.0);
        continue;
      }

      if (injector) {
        // Under the byzantine layer the completion credit waits until the
        // validator has ruled on this update (a rejection books the round
        // as kRejected instead).
        if (!byz_on) {
          leader_.RecordRoundResult(node_id, Leader::RoundResult::kCompleted);
        }
        // Under faults the round's critical path includes transfers,
        // retries, and the straggler slowdown.
        round_parallel = std::max(round_parallel, node_seconds);
      } else {
        round_parallel = std::max(round_parallel, train_seconds);
      }
      obs::Count("federation.nodes.completed");
      record_node(node_id, obs::NodeFate::kCompleted, train_seconds,
                  down_seconds + up_seconds, result.samples_used,
                  fate.slowdown > 1.0);
      final_alive[j] = true;
      local_models.push_back(result.model);
      eq7_weights.push_back(rank_weight);
      fedavg_weights.push_back(
          std::max(1.0, static_cast<double>(result.samples_used)));
      survivor_jobs.push_back(j);
    }
    // Byzantine screening: every delivered update faces the validator
    // before it can influence any aggregate. Rejected updates are dropped
    // from the survivor set, booked against the node's reliability, and
    // (optionally) start a quarantine.
    if (byz_on && !local_models.empty()) {
      const Matrix* holdout_x = nullptr;
      const Matrix* holdout_y = nullptr;
      if (validator_->wants_holdout()) {
        holdout_x = &test->features();
        holdout_y = &test->targets();
      }
      QENS_ASSIGN_OR_RETURN(
          ValidationReport screening,
          validator_->Validate(local_models, global, holdout_x, holdout_y));
      if (screening.rejected() > 0) {
        outcome.rejected_non_finite += screening.rejected_non_finite;
        outcome.rejected_abs_norm += screening.rejected_abs_norm;
        outcome.rejected_norm_outlier += screening.rejected_norm_outlier;
        outcome.rejected_holdout += screening.rejected_holdout;
        std::vector<ml::SequentialModel> kept_models;
        std::vector<double> kept_eq7;
        std::vector<double> kept_fedavg;
        std::vector<size_t> kept_jobs;
        for (size_t i = 0; i < local_models.size(); ++i) {
          const size_t j = survivor_jobs[i];
          const size_t node_id = jobs[j].node_id;
          if (screening.verdicts[i].accepted) {
            leader_.RecordRoundResult(node_id,
                                      Leader::RoundResult::kCompleted);
            kept_models.push_back(std::move(local_models[i]));
            kept_eq7.push_back(eq7_weights[i]);
            kept_fedavg.push_back(fedavg_weights[i]);
            kept_jobs.push_back(j);
            continue;
          }
          final_alive[j] = false;
          record_once(&outcome.rejected_nodes, node_id);
          ++outcome.rejected_updates;
          leader_.RecordRoundResult(node_id, Leader::RoundResult::kRejected);
          if (byz.quarantine_rounds > 0) {
            quarantine_until_[node_id] =
                byz_round + 1 + byz.quarantine_rounds;
          }
          obs::Count("federation.nodes.rejected");
          if (obs_on) {
            ++record.rejected;
            for (obs::NodeRoundStat& stat : record.nodes) {
              if (stat.node_id == node_id &&
                  stat.fate == obs::NodeFate::kCompleted) {
                stat.fate = obs::NodeFate::kRejected;
                break;
              }
            }
          }
        }
        local_models = std::move(kept_models);
        eq7_weights = std::move(kept_eq7);
        fedavg_weights = std::move(kept_fedavg);
        survivor_jobs = std::move(kept_jobs);
      } else {
        // Every delivered update passed: book the deferred completions.
        for (size_t i = 0; i < local_models.size(); ++i) {
          leader_.RecordRoundResult(jobs[survivor_jobs[i]].node_id,
                                    Leader::RoundResult::kCompleted);
        }
      }
    }

    // Rounds run in parallel across nodes but sequentially in time.
    outcome.sim_time_parallel += round_parallel;
    outcome.round_survivors.push_back(local_models.size());

    if (obs_on) {
      record.survivors = local_models.size();
      record.quorum_met =
          (!injector && !byz_on) ||
          MeetsQuorum(local_models.size(), jobs.size(), ft.min_quorum_frac);
      record.parallel_seconds = round_parallel;
      record.total_train_seconds = round_train;
      record.comm_seconds = round_comm;
      obs::Observe("federation.round.parallel_seconds", round_parallel);
      outcome.round_records.push_back(std::move(record));
    }

    if ((injector || byz_on) &&
        !MeetsQuorum(local_models.size(), jobs.size(), ft.min_quorum_frac)) {
      // Below quorum: discard the partial update; the previous global
      // model carries into the next round (or becomes the final answer).
      ++outcome.degraded_rounds;
      obs::Count("federation.rounds.degraded");
      local_models.clear();
      eq7_weights.clear();
      fedavg_weights.clear();
      survivor_jobs.clear();
      std::fill(final_alive.begin(), final_alive.end(), false);
      continue;
    }
    if (local_models.empty()) {
      if (!injector && !byz_on) break;
      continue;  // A later round may still gather survivors.
    }
    if (round + 1 < rounds) {
      // Merge the locals into the next round's global model: FedAvg on the
      // paper path, the configured robust aggregator under the byzantine
      // layer.
      if (byz_on) {
        QENS_ASSIGN_OR_RETURN(
            global, MergeRobust(byz, local_models, fedavg_weights, global));
      } else {
        QENS_ASSIGN_OR_RETURN(global,
                              FedAvgParameters(local_models, fedavg_weights));
      }
    }
  }

  if ((injector || byz_on) && local_models.empty()) {
    // Graceful degradation: answer with the last committed global model
    // rather than failing the query outright.
    local_models.push_back(global.Clone());
    eq7_weights.push_back(1.0);
  }
  if (local_models.empty()) {
    outcome.skipped = true;
    outcome.wall_seconds = watch.ElapsedSeconds();
    return outcome;
  }
  outcome.selected_nodes = chosen;

  if (injector && std::find(final_alive.begin(), final_alive.end(), true) !=
                      final_alive.end()) {
    // Survivor-renormalized Eq. 7 weights over the engaged jobs (exposed
    // for diagnostics; the ensemble normalizes equivalently below).
    std::vector<double> job_weights(jobs.size());
    for (size_t j = 0; j < jobs.size(); ++j) {
      job_weights[j] = jobs[j].rank_weight;
    }
    QENS_ASSIGN_OR_RETURN(outcome.survivor_weights,
                          PartialWeights(job_weights, final_alive));
  }

  // Eq. 7 weights: rankings when ranked selection produced them; otherwise
  // (Random/All/GT) weighted averaging degenerates to Eq. 6. A degenerate
  // all-zero ranking vector also falls back to equal weights.
  double weight_sum = 0.0;
  for (double w : eq7_weights) weight_sum += w;
  if (weight_sum <= 0.0) {
    std::fill(eq7_weights.begin(), eq7_weights.end(), 1.0);
  }

  QENS_ASSIGN_OR_RETURN(
      EnsembleModel ensemble,
      EnsembleModel::Create(std::move(local_models), eq7_weights));

  const Matrix& x_test = test->features();
  const Matrix& y_test = test->targets();
  QENS_ASSIGN_OR_RETURN(Matrix pred_avg,
                        ensemble.Predict(x_test,
                                         AggregationKind::kModelAveraging));
  QENS_ASSIGN_OR_RETURN(
      outcome.loss_model_avg,
      ml::ComputeLoss(ml::LossKind::kMse, pred_avg, y_test));
  QENS_ASSIGN_OR_RETURN(
      Matrix pred_weighted,
      ensemble.Predict(x_test, AggregationKind::kWeightedAveraging));
  QENS_ASSIGN_OR_RETURN(
      outcome.loss_weighted,
      ml::ComputeLoss(ml::LossKind::kMse, pred_weighted, y_test));
  QENS_ASSIGN_OR_RETURN(
      Matrix pred_fedavg,
      ensemble.Predict(x_test, AggregationKind::kFedAvgParameters));
  QENS_ASSIGN_OR_RETURN(
      outcome.loss_fedavg,
      ml::ComputeLoss(ml::LossKind::kMse, pred_fedavg, y_test));

  if (byz_on) {
    // Robust final answer under the configured aggregator, against the
    // last committed global model as the clipping reference.
    RobustAggregationOptions robust;
    robust.trim_beta = byz.trim_beta;
    robust.clip_norm = byz.clip_norm;
    robust.reference = &global;
    QENS_ASSIGN_OR_RETURN(Matrix pred_robust,
                          ensemble.Predict(x_test, byz.aggregator, robust));
    QENS_ASSIGN_OR_RETURN(
        outcome.loss_robust,
        ml::ComputeLoss(ml::LossKind::kMse, pred_robust, y_test));
    outcome.has_loss_robust = true;
  }

  // Report losses in raw target units, comparable to the paper's numbers.
  outcome.loss_model_avg = DenormalizeMse(outcome.loss_model_avg);
  outcome.loss_weighted = DenormalizeMse(outcome.loss_weighted);
  outcome.loss_fedavg = DenormalizeMse(outcome.loss_fedavg);
  if (outcome.has_loss_robust) {
    outcome.loss_robust = DenormalizeMse(outcome.loss_robust);
  }

  if (!outcome.round_records.empty()) {
    // The final record carries the evaluated answer quality (Eq. 7 loss).
    outcome.round_records.back().has_loss = true;
    outcome.round_records.back().loss = outcome.loss_weighted;
  }

  outcome.wall_seconds = watch.ElapsedSeconds();
  return outcome;
}

}  // namespace qens::fl
