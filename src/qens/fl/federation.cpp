#include "qens/fl/federation.h"

namespace qens::fl {

Result<Federation> Federation::Create(std::vector<data::Dataset> node_data,
                                      const FederationOptions& options) {
  QENS_ASSIGN_OR_RETURN(std::shared_ptr<Fleet> fleet,
                        Fleet::Create(std::move(node_data), options));
  // The default session: untagged (session_id 0), seeded with the
  // federation seed, sending through the environment-owned network — which
  // makes the facade byte-identical to the historical monolithic loop.
  QENS_ASSIGN_OR_RETURN(
      QuerySession session,
      QuerySession::Create(fleet, QuerySessionOptions{},
                           &fleet->environment.network()));
  return Federation(std::move(fleet), std::move(session));
}

}  // namespace qens::fl
