#ifndef QENS_FL_FEDERATION_H_
#define QENS_FL_FEDERATION_H_

/// \file federation.h
/// End-to-end per-query federated learning (Section IV-B), parameterized by
/// the node-selection policy and the aggregation rule:
///
///   1. the leader ranks profiles and selects N'(q) (query-driven), or the
///      baseline policy picks nodes (random / all / game-theory);
///   2. the leader broadcasts the initial global model w;
///   3. every selected node trains locally — on its supporting clusters
///      only (data selectivity) or on its full data (baseline);
///   4. local models return to the leader, which aggregates them (Eq. 6/7
///      or FedAvg) and answers the query;
///   5. the outcome is evaluated on held-out test rows that fall inside the
///      query region, pooled across ALL nodes (ground truth independent of
///      the selection decision).
///
/// Every message is accounted through the simulated network, and training
/// time through the cost model, so Fig. 7/8/9-style records fall out of
/// each RunQuery call.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "qens/common/status.h"
#include "qens/common/thread_pool.h"
#include "qens/data/dataset.h"
#include "qens/data/normalizer.h"
#include "qens/fl/aggregation.h"
#include "qens/fl/leader.h"
#include "qens/fl/participant.h"
#include "qens/fl/update_validator.h"
#include "qens/ml/metrics.h"
#include "qens/obs/round_record.h"
#include "qens/query/range_query.h"
#include "qens/selection/data_centric.h"
#include "qens/selection/game_theory.h"
#include "qens/selection/stochastic.h"
#include "qens/sim/edge_environment.h"
#include "qens/sim/fault_injection.h"

namespace qens::fl {

/// Fault-tolerance policy for the federated loop. Strictly opt-in: with
/// `enabled == false` the loop reproduces the fault-free protocol
/// bit-for-bit (no injector is constructed and no extra RNG draws occur).
struct FaultToleranceOptions {
  bool enabled = false;
  /// The seeded fault schedule applied to the simulated environment.
  sim::FaultPlanOptions faults;
  /// Per-round deadline in simulated seconds covering one participant's
  /// model-down transfer + (slowed) local training + model-up transfer.
  /// Participants that exceed it are excluded from the round. 0 disables.
  double round_deadline_s = 0.0;
  /// Total transmissions attempted per message (1 = no retries).
  size_t max_send_attempts = 3;
  /// Extra simulated wait added after each lost transmission before the
  /// retry goes out.
  double retry_backoff_s = 0.005;
  /// Minimum fraction of the engaged participants that must return a model
  /// for the round to commit; below it the round degrades gracefully to
  /// the previous global model.
  double min_quorum_frac = 0.5;
};

/// Byzantine-robustness policy (opt-in). Strictly additive: with
/// `enabled == false` no validator is built, no quarantine state is kept,
/// and the round flow is byte-identical to the pre-robustness protocol.
struct ByzantineOptions {
  bool enabled = false;
  /// Leader-side screening of returned updates (finite / norm / holdout).
  UpdateValidatorOptions validator;
  /// Rounds a node sits out after a rejected update (0 = reject only,
  /// never quarantine). Repeat offenders are re-quarantined on return.
  size_t quarantine_rounds = 0;
  /// Aggregator for the inter-round merge and the robust final answer.
  /// Must be parameter-space: kFedAvgParameters, kCoordinateMedian,
  /// kTrimmedMean, or kNormClippedFedAvg.
  AggregationKind aggregator = AggregationKind::kFedAvgParameters;
  /// kTrimmedMean trim fraction, in [0, 0.5).
  double trim_beta = 0.1;
  /// kNormClippedFedAvg L2 bound on (w_i - w_round), > 0.
  double clip_norm = 1.0;
};

/// Federation-wide configuration.
struct FederationOptions {
  sim::EnvironmentOptions environment;
  selection::RankingOptions ranking;
  selection::QueryDrivenOptions query_driven;
  selection::GameTheoryOptions game_theory;
  selection::DataCentricOptions data_centric;
  selection::StochasticOptions stochastic;
  ml::HyperParams hyper = ml::PaperHyperParams(ml::ModelKind::kLinearRegression);
  /// Local epochs per supporting cluster (the paper's E).
  size_t epochs_per_cluster = 20;
  /// Number of nodes the Random baseline draws (paper's l). Clamped to N.
  size_t random_l = 3;
  /// Fraction of each node's data held out for leader-side evaluation.
  double test_fraction = 0.2;
  /// Leader-coordinated min-max normalization of features and targets
  /// before training. The scaling constants are exactly the per-dimension
  /// global min/max, which the leader already learns from the shipped
  /// cluster boundaries (plus one target-range pair per node) — so this
  /// costs O(1) extra communication and no raw-data exposure. Required in
  /// practice: Table III's learning rates (0.03 for LR) diverge on raw
  /// PM2.5-scale targets. Reported losses are mapped back to raw target
  /// units so they remain comparable with the paper's numbers.
  bool normalize = true;
  /// Volatile clients ([12]): probability that a selected node is offline
  /// for a given query and silently contributes no model. 0 disables.
  double dropout_rate = 0.0;
  /// Train the selected participants concurrently on a shared thread pool,
  /// as they would run on real hardware. Outcomes are bit-identical to the
  /// sequential path (per-node seeds; results consumed in submission order
  /// regardless of completion order). The pool is created lazily on the
  /// first parallel round and reused across rounds and queries.
  bool parallel_local_training = false;
  /// Worker threads for parallel local training. 0 = one per hardware
  /// thread. Jobs beyond the bound queue on the pool (oversubscription is
  /// safe and still deterministic). Ignored when parallel_local_training
  /// is false.
  size_t max_parallel_nodes = 0;
  /// Fault injection + deadline/retry/quorum policy (opt-in).
  FaultToleranceOptions fault_tolerance;
  /// Update validation, quarantine, and robust aggregation (opt-in).
  ByzantineOptions byzantine;
  uint64_t seed = 17;
};

/// Everything recorded about one query execution.
struct QueryOutcome {
  query::RangeQuery query;
  selection::PolicyKind policy = selection::PolicyKind::kQueryDriven;
  bool data_selectivity = false;  ///< Trained on supporting clusters only.

  std::vector<size_t> selected_nodes;
  std::vector<double> selected_rankings;  ///< Empty for non-ranked policies.

  /// Losses of the aggregated answer on the pooled query-region test rows.
  double loss_model_avg = 0.0;   ///< Eq. 6.
  double loss_weighted = 0.0;    ///< Eq. 7 (falls back to Eq. 6 when no
                                 ///< rankings are available).
  double loss_fedavg = 0.0;      ///< Parameter-averaging extension.
  size_t test_rows = 0;

  /// Data accounting (Fig. 9).
  size_t samples_used = 0;        ///< Rows actually trained on.
  size_t samples_selected = 0;    ///< Total rows held by selected nodes.
  size_t samples_all_nodes = 0;   ///< Total rows across the federation.
  double DataFractionOfSelected() const;
  double DataFractionOfAll() const;

  /// Time accounting (Fig. 8).
  double sim_time_total = 0.0;     ///< Sum of per-node training seconds.
  double sim_time_parallel = 0.0;  ///< Max per-node training seconds.
  double sim_time_comm = 0.0;      ///< Model up/down transfer seconds.
  double wall_seconds = 0.0;       ///< Measured C++ wall time.
  double gt_preround_seconds = 0.0;  ///< GT's mandatory probing cost.

  /// True when the query produced no usable run (no test rows in region or
  /// no trainable node); such outcomes carry no loss numbers.
  bool skipped = false;

  /// Federated rounds executed (1 for the paper's single-round protocol).
  size_t rounds = 1;
  /// Selected nodes that were offline this query (volatile clients).
  std::vector<size_t> dropped_nodes;

  /// \name Fault-tolerance accounting
  /// Populated when FederationOptions::fault_tolerance is enabled
  /// (round_survivors is recorded unconditionally).
  /// @{
  std::vector<size_t> round_survivors;  ///< Models received, per round.
  std::vector<size_t> failed_nodes;     ///< Crashed / offline / all sends lost.
  std::vector<size_t> deadline_missed_nodes;  ///< Excluded as stragglers.
  /// Final-round Eq. 7 weights renormalized over the survivors (one entry
  /// per engaged job; non-survivors hold 0; survivors sum to 1).
  std::vector<double> survivor_weights;
  size_t degraded_rounds = 0;  ///< Below-quorum rounds (kept previous model).
  size_t messages_lost = 0;    ///< Transmissions lost in flight.
  size_t send_retries = 0;     ///< Extra transmissions beyond the first.
  /// @}

  /// \name Byzantine accounting
  /// Populated when FederationOptions::byzantine is enabled.
  /// @{
  std::vector<size_t> rejected_nodes;     ///< Had >= 1 update rejected.
  std::vector<size_t> quarantined_nodes;  ///< Skipped >= 1 round quarantined.
  size_t rejected_updates = 0;    ///< Updates dropped by the validator.
  size_t quarantined_skips = 0;   ///< (node, round) pairs skipped.
  size_t rejected_non_finite = 0;
  size_t rejected_abs_norm = 0;
  size_t rejected_norm_outlier = 0;
  size_t rejected_holdout = 0;
  /// Final answer under ByzantineOptions::aggregator (raw target units).
  bool has_loss_robust = false;
  double loss_robust = 0.0;
  /// @}

  /// Per-round telemetry (schema in docs/OBSERVABILITY.md). Populated only
  /// while obs metrics are enabled; always empty otherwise, so the default
  /// path allocates nothing.
  std::vector<obs::RoundRecord> round_records;
};

/// Owns the environment (train shards), the held-out test shards, and the
/// leader; executes queries under any policy.
class Federation {
 public:
  /// Split every node's dataset into train/test, build the environment on
  /// the train shards, keep test shards leader-side for evaluation.
  static Result<Federation> Create(std::vector<data::Dataset> node_data,
                                   const FederationOptions& options);

  const sim::EdgeEnvironment& environment() const { return environment_; }
  sim::EdgeEnvironment& environment() { return environment_; }
  const Leader& leader() const { return leader_; }
  const FederationOptions& options() const { return options_; }

  /// Hull of all nodes' feature spaces in RAW units — queries are issued
  /// against this space regardless of internal normalization.
  const query::HyperRectangle& RawDataSpace() const { return raw_space_; }

  /// Map a raw-unit query into the federation's internal (possibly
  /// normalized) feature space. Identity when normalization is off.
  Result<query::RangeQuery> InternalQuery(const query::RangeQuery& query) const;

  /// Convert an internal-space MSE back to raw target units (identity when
  /// normalization is off or the target range is degenerate).
  double DenormalizeMse(double mse) const;

  /// Pooled test rows (across all nodes) inside the query region. The query
  /// is in raw units; the returned dataset is in internal units.
  Result<data::Dataset> QueryRegionTestData(
      const query::RangeQuery& query) const;

  /// Execute one query under `policy`. `data_selectivity` controls whether
  /// selected nodes train only on supporting clusters (the paper's
  /// mechanism) or on their whole local data. Random/All/GT policies ignore
  /// rankings and always train on full node data unless selectivity is
  /// explicitly requested AND the node has supporting clusters.
  Result<QueryOutcome> RunQuery(const query::RangeQuery& query,
                                selection::PolicyKind policy,
                                bool data_selectivity);

  /// Convenience: the paper's mechanism (query-driven + selectivity).
  Result<QueryOutcome> RunQueryDriven(const query::RangeQuery& query) {
    return RunQuery(query, selection::PolicyKind::kQueryDriven,
                    /*data_selectivity=*/true);
  }

  /// Multi-round extension: repeat the leader -> participants -> leader
  /// exchange `rounds` times over ONE node selection, FedAvg-merging the
  /// local models (weighted by samples trained) between rounds — the
  /// standard federated loop, with the paper's single-round protocol as
  /// rounds == 1. The final round is aggregated and evaluated exactly like
  /// RunQuery.
  Result<QueryOutcome> RunQueryMultiRound(const query::RangeQuery& query,
                                          selection::PolicyKind policy,
                                          bool data_selectivity,
                                          size_t rounds);

  /// Per-node participation counts accumulated by the stochastic policy.
  const std::vector<size_t>& StochasticParticipation();

  /// The active fault injector, or nullptr when fault tolerance is off.
  const sim::FaultInjector* fault_injector() const {
    return fault_injector_.has_value() ? &*fault_injector_ : nullptr;
  }

  /// Global round counter the fault schedule is evaluated against (advances
  /// once per executed round when fault tolerance is on, so crashes persist
  /// across queries).
  size_t fault_round() const { return fault_round_; }

 private:
  Federation(sim::EdgeEnvironment environment,
             std::vector<data::Dataset> test_shards, Leader leader,
             FederationOptions options, query::HyperRectangle raw_space,
             std::optional<data::Normalizer> feature_norm,
             std::optional<data::Normalizer> target_norm)
      : environment_(std::move(environment)),
        test_shards_(std::move(test_shards)),
        leader_(std::move(leader)),
        options_(std::move(options)),
        raw_space_(std::move(raw_space)),
        feature_norm_(std::move(feature_norm)),
        target_norm_(std::move(target_norm)) {}

  /// Per-policy node choice; fills rankings for ranked policies. The query
  /// must already be in internal units.
  Result<std::vector<size_t>> ChooseNodes(const query::RangeQuery& query,
                                          selection::PolicyKind policy,
                                          QueryOutcome* outcome);

  sim::EdgeEnvironment environment_;
  std::vector<data::Dataset> test_shards_;  ///< By node id, internal units.
  Leader leader_;
  FederationOptions options_;
  query::HyperRectangle raw_space_;  ///< Raw-unit global data space.
  std::optional<data::Normalizer> feature_norm_;
  std::optional<data::Normalizer> target_norm_;
  uint64_t random_stream_ = 0;   ///< Advances per Random-policy query.
  uint64_t dropout_stream_ = 0;  ///< Advances per query with dropout on.
  std::optional<selection::StochasticSelector> stochastic_;  ///< Lazy.
  std::optional<sim::FaultInjector> fault_injector_;  ///< When enabled.
  size_t fault_round_ = 0;  ///< Rounds executed under fault injection.
  std::optional<UpdateValidator> validator_;  ///< When byzantine.enabled.
  /// Shared worker pool for parallel local training; created lazily on the
  /// first parallel round, then reused across rounds and queries.
  std::unique_ptr<common::ThreadPool> pool_;
  /// Per node: first byzantine round index the node may rejoin (quarantine
  /// expiry). Sized num_nodes when byzantine.enabled, else empty.
  std::vector<size_t> quarantine_until_;
  size_t byz_round_ = 0;  ///< Rounds executed under the byzantine layer.
};

}  // namespace qens::fl

#endif  // QENS_FL_FEDERATION_H_
