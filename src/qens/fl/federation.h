#ifndef QENS_FL_FEDERATION_H_
#define QENS_FL_FEDERATION_H_

/// \file federation.h
/// The sequential facade over the session-based query-serving engine: one
/// fleet, one default QuerySession, the historical API.
///
/// One RunQuery call executes the paper's end-to-end per-query protocol
/// (Section IV-B), layered as (see docs/ARCHITECTURE.md):
///
///   1. the QuerySession maps the query into internal units, pools the
///      ground-truth test rows, and picks N'(q) — the leader's ranked cut
///      (query-driven) or a baseline policy (random / all / game-theory /
///      data-centric / stochastic);
///   2. the session builds one TrainJob per contributing node (supporting
///      clusters only under data selectivity) and initializes the global
///      model w;
///   3. the RoundEngine drives the round(s): broadcast w over the
///      Transport, train locally on every node (optionally in parallel),
///      collect the returning models, screen/quarantine them when the
///      Byzantine layer is on, gate them on deadlines/quorum when the
///      fault layer is on, and FedAvg-merge between rounds;
///   4. the session aggregates the surviving local models (Eq. 6/7 or
///      FedAvg) and answers the query;
///   5. the outcome is evaluated on held-out test rows that fall inside the
///      query region, pooled across ALL nodes (ground truth independent of
///      the selection decision).
///
/// Every message is accounted through the simulated network, and training
/// time through the cost model, so Fig. 7/8/9-style records fall out of
/// each RunQuery call. The Federation's session sends through the
/// environment-owned network and is seeded with FederationOptions::seed,
/// which keeps this facade byte-identical to the historical monolithic
/// implementation; QueryServer runs many isolated sessions concurrently
/// over the same fleet.

#include <cstdint>
#include <memory>
#include <vector>

#include "qens/common/status.h"
#include "qens/data/dataset.h"
#include "qens/fl/query_session.h"

namespace qens::fl {

/// Owns the fleet (environment + test shards) and a default session;
/// executes queries sequentially under any policy.
class Federation {
 public:
  /// Split every node's dataset into train/test, build the environment on
  /// the train shards, keep test shards leader-side for evaluation.
  static Result<Federation> Create(std::vector<data::Dataset> node_data,
                                   const FederationOptions& options);

  const sim::EdgeEnvironment& environment() const {
    return fleet_->environment;
  }
  sim::EdgeEnvironment& environment() { return fleet_->environment; }
  const Leader& leader() const { return session_.leader(); }
  const FederationOptions& options() const { return fleet_->options; }

  /// The immutable deployment, shareable with concurrent QuerySessions /
  /// a QueryServer. Outlives this Federation as long as someone holds it.
  std::shared_ptr<const Fleet> fleet() const { return fleet_; }

  /// Hull of all nodes' feature spaces in RAW units — queries are issued
  /// against this space regardless of internal normalization.
  const query::HyperRectangle& RawDataSpace() const {
    return fleet_->raw_space;
  }

  /// Map a raw-unit query into the federation's internal (possibly
  /// normalized) feature space. Identity when normalization is off.
  Result<query::RangeQuery> InternalQuery(
      const query::RangeQuery& query) const {
    return fleet_->InternalQuery(query);
  }

  /// Convert an internal-space MSE back to raw target units (identity when
  /// normalization is off or the target range is degenerate).
  double DenormalizeMse(double mse) const {
    return fleet_->DenormalizeMse(mse);
  }

  /// Pooled test rows (across all nodes) inside the query region. The query
  /// is in raw units; the returned dataset is in internal units.
  Result<data::Dataset> QueryRegionTestData(
      const query::RangeQuery& query) const {
    return fleet_->QueryRegionTestData(query);
  }

  /// Execute one query under `policy`. `data_selectivity` controls whether
  /// selected nodes train only on supporting clusters (the paper's
  /// mechanism) or on their whole local data. Random/All/GT policies ignore
  /// rankings and always train on full node data unless selectivity is
  /// explicitly requested AND the node has supporting clusters.
  Result<QueryOutcome> RunQuery(const query::RangeQuery& query,
                                selection::PolicyKind policy,
                                bool data_selectivity) {
    return session_.RunQuery(query, policy, data_selectivity);
  }

  /// Convenience: the paper's mechanism (query-driven + selectivity).
  Result<QueryOutcome> RunQueryDriven(const query::RangeQuery& query) {
    return RunQuery(query, selection::PolicyKind::kQueryDriven,
                    /*data_selectivity=*/true);
  }

  /// Multi-round extension: repeat the leader -> participants -> leader
  /// exchange `rounds` times over ONE node selection, FedAvg-merging the
  /// local models (weighted by samples trained) between rounds — the
  /// standard federated loop, with the paper's single-round protocol as
  /// rounds == 1. The final round is aggregated and evaluated exactly like
  /// RunQuery.
  Result<QueryOutcome> RunQueryMultiRound(const query::RangeQuery& query,
                                          selection::PolicyKind policy,
                                          bool data_selectivity,
                                          size_t rounds) {
    return session_.RunQueryMultiRound(query, policy, data_selectivity,
                                       rounds);
  }

  /// Per-node participation counts accumulated by the stochastic policy.
  const std::vector<size_t>& StochasticParticipation() {
    return session_.StochasticParticipation();
  }

  /// The active fault injector, or nullptr when fault tolerance is off.
  const sim::FaultInjector* fault_injector() const {
    return session_.fault_injector();
  }

  /// Global round counter the fault schedule is evaluated against (advances
  /// once per executed round when fault tolerance is on, so crashes persist
  /// across queries).
  size_t fault_round() const { return session_.fault_round(); }

 private:
  Federation(std::shared_ptr<Fleet> fleet, QuerySession session)
      : fleet_(std::move(fleet)), session_(std::move(session)) {}

  std::shared_ptr<Fleet> fleet_;
  QuerySession session_;  ///< Default stream over the environment network.
};

}  // namespace qens::fl

#endif  // QENS_FL_FEDERATION_H_
