#ifndef QENS_FL_LEADER_H_
#define QENS_FL_LEADER_H_

/// \file leader.h
/// The leader node's decision logic (Section III-A): receive a query, rank
/// every participant's published profile against it (Eqs. 2–4), and cut the
/// ranked list into the participant set N'(q) (top-l or Eq. 5 threshold).
/// The leader never touches raw node data — only profiles.
///
/// Ranking is served through up to three bitwise-identical paths, chosen
/// by RankingOptions (docs/INDEXING.md): the paper-exact scan (default), a
/// shared cluster-rectangle spatial index (use_index, supplied at
/// construction — typically Fleet's), and a leader-local exact-match
/// ranking cache (use_cache). The cache is cleared whenever
/// RecordRoundResult touches a profile, because reliability feeds the
/// ranking record.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "qens/common/status.h"
#include "qens/query/range_query.h"
#include "qens/selection/cluster_index.h"
#include "qens/selection/node_profile.h"
#include "qens/selection/policies.h"
#include "qens/selection/ranking.h"
#include "qens/selection/ranking_cache.h"

namespace qens::fl {

/// The leader's per-query selection decision.
struct SelectionDecision {
  std::vector<selection::NodeRank> all_ranks;  ///< DESC by ranking.
  std::vector<selection::NodeRank> selected;   ///< The chosen N'(q).

  /// Raw rankings of the selected nodes (Eq. 7 weights, pre-normalization).
  std::vector<double> SelectedRankings() const;
  std::vector<size_t> SelectedNodeIds() const;
};

/// Ranks profiles and applies the query-driven cut.
class Leader {
 public:
  /// How each ranking request was served (cumulative; diagnostics only).
  struct RankingTelemetry {
    uint64_t scan_rankings = 0;   ///< Full O(N*K) scans.
    uint64_t index_rankings = 0;  ///< Served through the cluster index.
    uint64_t cache_hits = 0;      ///< Served from the ranking cache.
    uint64_t cache_misses = 0;    ///< Cache enabled but had to compute.
    uint64_t cache_evictions = 0;
    uint64_t candidate_nodes = 0;   ///< Nodes scored by the index (sum).
    uint64_t pruned_clusters = 0;   ///< Clusters skipped by the index (sum).
  };

  /// `index` (optional) must have been built over exactly `profiles` (same
  /// order, ids, and cluster counts); it is consulted only when
  /// ranking_options.use_index is set. The cache is created here iff
  /// ranking_options.use_cache. `fleet_epoch` is the fleet state version
  /// the profiles (and index) represent; it advances on every
  /// PublishRefreshedProfile.
  Leader(std::vector<selection::NodeProfile> profiles,
         selection::RankingOptions ranking_options,
         selection::QueryDrivenOptions selection_options,
         std::shared_ptr<const selection::ClusterIndex> index = nullptr,
         uint64_t fleet_epoch = 0)
      : profiles_(std::move(profiles)),
        ranking_options_(ranking_options),
        selection_options_(selection_options),
        index_(std::move(index)),
        fleet_epoch_(fleet_epoch) {
    if (ranking_options_.use_cache && ranking_options_.cache_capacity > 0) {
      selection::RankingCacheOptions cache_options;
      cache_options.capacity = ranking_options_.cache_capacity;
      cache_options.quantum = ranking_options_.cache_quantum;
      cache_.emplace(cache_options);
    }
  }

  const std::vector<selection::NodeProfile>& profiles() const {
    return profiles_;
  }
  const selection::RankingOptions& ranking_options() const {
    return ranking_options_;
  }
  const selection::QueryDrivenOptions& selection_options() const {
    return selection_options_;
  }

  /// Rank all nodes for `query` (no cut applied).
  Result<std::vector<selection::NodeRank>> Rank(
      const query::RangeQuery& query) const;

  /// Rank and select per the configured query-driven policy.
  Result<SelectionDecision> Decide(const query::RangeQuery& query) const;

  /// How one engaged node ended a round, for the reliability history.
  enum class RoundResult { kCompleted, kFailed, kMissedDeadline, kRejected };

  /// Record an engaged node's round outcome into its profile's observed
  /// reliability history (feeds the ranking's flaky-node penalty). Unknown
  /// node ids are ignored. Invalidates the ranking cache: reliability is
  /// part of every NodeRank, so stale entries must never be served.
  void RecordRoundResult(size_t node_id, RoundResult result);

  /// \name Dynamic-fleet state (fl/dynamic_fleet.h)
  /// @{
  /// The fleet-state version this leader's profiles represent. Starts at
  /// the Fleet's base epoch and advances monotonically on every published
  /// refresh; the index is consulted only while its epoch matches, and the
  /// ranking cache is re-bound (dropping stale entries) on every change.
  uint64_t fleet_epoch() const { return fleet_epoch_; }

  /// Update a node's rounds-of-unpublished-drift counter. stale_rounds is
  /// part of every NodeRank (and scales the ranking when staleness_weight
  /// > 0), so a change invalidates the ranking cache. Unknown ids are
  /// ignored.
  void SetStaleRounds(size_t node_id, size_t stale_rounds);

  /// Publish a node's refreshed digest (online cluster refresh): replaces
  /// the stored clusters/sample counts, keeps the observed reliability
  /// history, zeroes stale_rounds, and bumps fleet_epoch. When this leader
  /// ranks through an index, a fresh session-local index is rebuilt over
  /// the updated profiles and stamped with the new epoch. Fails on an
  /// unknown node id or an index rebuild error.
  Status PublishRefreshedProfile(const selection::NodeProfile& fresh);
  /// @}

  /// The shared spatial index this leader ranks through, or nullptr.
  const selection::ClusterIndex* cluster_index() const { return index_.get(); }
  /// The leader-local ranking cache, or nullptr when use_cache is off.
  const selection::RankingCache* ranking_cache() const {
    return cache_.has_value() ? &*cache_ : nullptr;
  }
  const RankingTelemetry& ranking_telemetry() const { return telemetry_; }

 private:
  std::vector<selection::NodeProfile> profiles_;
  selection::RankingOptions ranking_options_;
  selection::QueryDrivenOptions selection_options_;
  std::shared_ptr<const selection::ClusterIndex> index_;
  uint64_t fleet_epoch_ = 0;
  /// Rank() is logically const; the accelerators below are memoization
  /// and diagnostics only (never observable in results).
  mutable selection::ClusterIndex::Scratch scratch_;
  mutable std::optional<selection::RankingCache> cache_;
  mutable RankingTelemetry telemetry_;
};

}  // namespace qens::fl

#endif  // QENS_FL_LEADER_H_
