#ifndef QENS_FL_LEADER_H_
#define QENS_FL_LEADER_H_

/// \file leader.h
/// The leader node's decision logic (Section III-A): receive a query, rank
/// every participant's published profile against it (Eqs. 2–4), and cut the
/// ranked list into the participant set N'(q) (top-l or Eq. 5 threshold).
/// The leader never touches raw node data — only profiles.

#include <vector>

#include "qens/common/status.h"
#include "qens/query/range_query.h"
#include "qens/selection/node_profile.h"
#include "qens/selection/policies.h"
#include "qens/selection/ranking.h"

namespace qens::fl {

/// The leader's per-query selection decision.
struct SelectionDecision {
  std::vector<selection::NodeRank> all_ranks;  ///< DESC by ranking.
  std::vector<selection::NodeRank> selected;   ///< The chosen N'(q).

  /// Raw rankings of the selected nodes (Eq. 7 weights, pre-normalization).
  std::vector<double> SelectedRankings() const;
  std::vector<size_t> SelectedNodeIds() const;
};

/// Ranks profiles and applies the query-driven cut.
class Leader {
 public:
  Leader(std::vector<selection::NodeProfile> profiles,
         selection::RankingOptions ranking_options,
         selection::QueryDrivenOptions selection_options)
      : profiles_(std::move(profiles)),
        ranking_options_(ranking_options),
        selection_options_(selection_options) {}

  const std::vector<selection::NodeProfile>& profiles() const {
    return profiles_;
  }
  const selection::RankingOptions& ranking_options() const {
    return ranking_options_;
  }
  const selection::QueryDrivenOptions& selection_options() const {
    return selection_options_;
  }

  /// Rank all nodes for `query` (no cut applied).
  Result<std::vector<selection::NodeRank>> Rank(
      const query::RangeQuery& query) const;

  /// Rank and select per the configured query-driven policy.
  Result<SelectionDecision> Decide(const query::RangeQuery& query) const;

  /// How one engaged node ended a round, for the reliability history.
  enum class RoundResult { kCompleted, kFailed, kMissedDeadline, kRejected };

  /// Record an engaged node's round outcome into its profile's observed
  /// reliability history (feeds the ranking's flaky-node penalty). Unknown
  /// node ids are ignored.
  void RecordRoundResult(size_t node_id, RoundResult result);

 private:
  std::vector<selection::NodeProfile> profiles_;
  selection::RankingOptions ranking_options_;
  selection::QueryDrivenOptions selection_options_;
};

}  // namespace qens::fl

#endif  // QENS_FL_LEADER_H_
