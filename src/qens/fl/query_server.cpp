#include "qens/fl/query_server.h"

#include <algorithm>
#include <future>
#include <utility>

#include "qens/common/rng.h"
#include "qens/common/stopwatch.h"
#include "qens/common/thread_pool.h"

namespace qens::fl {

Result<QueryServer> QueryServer::Create(std::shared_ptr<const Fleet> fleet,
                                        const ServingOptions& options) {
  if (fleet == nullptr) {
    return Status::InvalidArgument("query server: null fleet");
  }
  return QueryServer(std::move(fleet), options);
}

uint64_t QueryServer::SessionSeed(uint64_t base_seed, uint64_t session_id) {
  // Independent stream per session id; Fork keeps streams decorrelated
  // without advancing the base generator, so the derivation depends only
  // on (base_seed, session_id) — never on scheduling.
  return Rng(base_seed ^ 0x5e5510ull).Fork(session_id).Next();
}

Result<SessionResult> QueryServer::RunSession(const SessionSpec& spec,
                                              uint64_t session_id) const {
  QuerySessionOptions session_options;
  session_options.session_id = session_id;
  session_options.seed =
      SessionSeed(options_.seed.value_or(fleet_->options.seed), session_id);
  session_options.network.record_messages = options_.record_session_messages;
  QENS_ASSIGN_OR_RETURN(QuerySession session,
                        QuerySession::Create(fleet_, session_options));

  Stopwatch watch;
  SessionResult result;
  result.session_id = session_id;
  result.outcomes.reserve(spec.queries.size());
  for (const query::RangeQuery& query : spec.queries) {
    QENS_ASSIGN_OR_RETURN(
        QueryOutcome outcome,
        session.RunQueryMultiRound(query, spec.policy, spec.data_selectivity,
                                   spec.rounds));
    if (outcome.skipped) {
      ++result.queries_skipped;
    } else {
      ++result.queries_run;
    }
    result.outcomes.push_back(std::move(outcome));
  }
  result.comm_messages = session.transport().total_messages();
  result.comm_bytes = session.transport().total_bytes();
  result.comm_seconds = session.transport().total_transfer_seconds();
  result.wall_seconds = watch.ElapsedSeconds();
  return result;
}

Result<std::vector<SessionResult>> QueryServer::Serve(
    const std::vector<SessionSpec>& specs) {
  std::vector<Result<SessionResult>> raw;
  raw.reserve(specs.size());
  if (options_.num_workers <= 1 || specs.size() <= 1) {
    for (size_t i = 0; i < specs.size(); ++i) {
      raw.push_back(RunSession(specs[i], /*session_id=*/i + 1));
    }
  } else {
    // One task per session; futures are collected in submission order so
    // the result vector (and any error propagation) is independent of
    // completion order.
    common::ThreadPool pool(std::min(options_.num_workers, specs.size()));
    std::vector<std::future<Result<SessionResult>>> futures;
    futures.reserve(specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
      futures.push_back(pool.Submit(
          [this, &spec = specs[i], i] { return RunSession(spec, i + 1); }));
    }
    for (auto& future : futures) raw.push_back(future.get());
  }

  std::vector<SessionResult> results;
  results.reserve(raw.size());
  for (Result<SessionResult>& r : raw) {
    QENS_RETURN_NOT_OK(r.status());
    results.push_back(std::move(r.value()));
  }
  return results;
}

}  // namespace qens::fl
