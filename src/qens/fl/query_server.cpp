#include "qens/fl/query_server.h"

#include <algorithm>
#include <future>
#include <utility>

#include "qens/common/rng.h"
#include "qens/common/stopwatch.h"
#include "qens/common/thread_pool.h"

namespace qens::fl {

Result<QueryServer> QueryServer::Create(std::shared_ptr<const Fleet> fleet,
                                        const ServingOptions& options) {
  if (fleet == nullptr) {
    return Status::InvalidArgument("query server: null fleet");
  }
  return QueryServer(std::move(fleet), options);
}

uint64_t QueryServer::SessionSeed(uint64_t base_seed, uint64_t session_id) {
  // Independent stream per session id; Fork keeps streams decorrelated
  // without advancing the base generator, so the derivation depends only
  // on (base_seed, session_id) — never on scheduling.
  return Rng(base_seed ^ 0x5e5510ull).Fork(session_id).Next();
}

SessionResult QueryServer::RunSession(const SessionSpec& spec,
                                      uint64_t session_id) const {
  SessionResult result;
  result.session_id = session_id;

  QuerySessionOptions session_options;
  session_options.session_id = session_id;
  session_options.seed =
      SessionSeed(options_.seed.value_or(fleet_->options.seed), session_id);
  session_options.network.record_messages = options_.record_session_messages;
  Result<QuerySession> session_or =
      QuerySession::Create(fleet_, session_options);
  if (!session_or.ok()) {
    result.status = session_or.status();
    return result;
  }
  QuerySession& session = session_or.value();

  Stopwatch watch;
  result.outcomes.reserve(spec.queries.size());
  for (const query::RangeQuery& query : spec.queries) {
    Result<QueryOutcome> outcome_or = session.RunQueryMultiRound(
        query, spec.policy, spec.data_selectivity, spec.rounds);
    if (!outcome_or.ok()) {
      // The stream stops at the failing query; everything already run is
      // kept so callers can see how far the session got.
      result.status = outcome_or.status();
      break;
    }
    QueryOutcome& outcome = outcome_or.value();
    if (outcome.skipped) {
      ++result.queries_skipped;
    } else {
      ++result.queries_run;
    }
    result.outcomes.push_back(std::move(outcome));
  }
  result.comm_messages = session.transport().total_messages();
  result.comm_bytes = session.transport().total_bytes();
  result.comm_seconds = session.transport().total_transfer_seconds();
  result.wall_seconds = watch.ElapsedSeconds();
  return result;
}

Result<std::vector<SessionResult>> QueryServer::Serve(
    const std::vector<SessionSpec>& specs) {
  std::vector<SessionResult> results;
  results.reserve(specs.size());
  if (options_.num_workers <= 1 || specs.size() <= 1) {
    for (size_t i = 0; i < specs.size(); ++i) {
      results.push_back(RunSession(specs[i], /*session_id=*/i + 1));
    }
  } else {
    // One task per session; futures are collected in submission order so
    // the result vector is independent of completion order. A session
    // failure stays inside its own SessionResult::status — the other
    // streams run to completion regardless.
    common::ThreadPool pool(std::min(options_.num_workers, specs.size()));
    std::vector<std::future<SessionResult>> futures;
    futures.reserve(specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
      futures.push_back(pool.Submit(
          [this, &spec = specs[i], i] { return RunSession(spec, i + 1); }));
    }
    for (auto& future : futures) results.push_back(future.get());
  }
  return results;
}

}  // namespace qens::fl
