#include "qens/fl/experiment.h"

#include <fstream>
#include <sstream>

#include "qens/common/string_util.h"

namespace qens::fl {

std::vector<Mechanism> Figure7Mechanisms() {
  return {
      {"GT", selection::PolicyKind::kGameTheory, /*data_selectivity=*/false,
       AggregationKind::kModelAveraging},
      {"Random", selection::PolicyKind::kRandom, /*data_selectivity=*/false,
       AggregationKind::kModelAveraging},
      {"Averaging", selection::PolicyKind::kQueryDriven,
       /*data_selectivity=*/true, AggregationKind::kModelAveraging},
      {"Weighted", selection::PolicyKind::kQueryDriven,
       /*data_selectivity=*/true, AggregationKind::kWeightedAveraging},
  };
}

double LossOf(const QueryOutcome& outcome, AggregationKind kind) {
  switch (kind) {
    case AggregationKind::kModelAveraging:
      return outcome.loss_model_avg;
    case AggregationKind::kWeightedAveraging:
      return outcome.loss_weighted;
    case AggregationKind::kFedAvgParameters:
      return outcome.loss_fedavg;
    case AggregationKind::kCoordinateMedian:
    case AggregationKind::kTrimmedMean:
    case AggregationKind::kNormClippedFedAvg:
      // The robust kinds are evaluated through the byzantine layer.
      return outcome.has_loss_robust ? outcome.loss_robust
                                     : outcome.loss_fedavg;
  }
  return outcome.loss_model_avg;
}

Result<ExperimentRunner> ExperimentRunner::Create(
    const ExperimentConfig& config) {
  data::AirQualityGenerator generator(config.data);
  QENS_ASSIGN_OR_RETURN(std::vector<data::Dataset> node_data,
                        generator.GenerateAll());
  QENS_ASSIGN_OR_RETURN(Federation federation,
                        Federation::Create(std::move(node_data),
                                           config.federation));
  // Queries are issued in raw units over the raw global data space; the
  // federation maps them into its internal space per query.
  query::WorkloadGenerator workload(federation.RawDataSpace(),
                                    config.workload);
  QENS_ASSIGN_OR_RETURN(std::vector<query::RangeQuery> queries,
                        workload.Generate());
  return ExperimentRunner(std::move(federation), std::move(queries), config);
}

Result<MechanismStats> ExperimentRunner::RunMechanism(
    const Mechanism& mechanism) {
  MechanismStats stats;
  stats.label = mechanism.label;
  for (const auto& q : queries_) {
    QENS_ASSIGN_OR_RETURN(
        QueryOutcome outcome,
        federation_.RunQuery(q, mechanism.policy,
                             mechanism.data_selectivity));
    for (auto& record : outcome.round_records) {
      collected_round_records_.push_back(std::move(record));
    }
    if (outcome.skipped) {
      ++stats.queries_skipped;
      continue;
    }
    ++stats.queries_run;
    stats.loss.Add(LossOf(outcome, mechanism.aggregation));
    stats.sim_time.Add(outcome.sim_time_total + outcome.sim_time_comm);
    stats.wall_time.Add(outcome.wall_seconds);
    stats.data_fraction.Add(outcome.DataFractionOfAll());
  }
  return stats;
}

Result<std::vector<QueryRecord>> ExperimentRunner::RunPerQuery(
    const Mechanism& mechanism, size_t limit) {
  const size_t n =
      limit == 0 ? queries_.size() : std::min(limit, queries_.size());
  std::vector<QueryRecord> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    QENS_ASSIGN_OR_RETURN(
        QueryOutcome outcome,
        federation_.RunQuery(queries_[i], mechanism.policy,
                             mechanism.data_selectivity));
    for (auto& record : outcome.round_records) {
      collected_round_records_.push_back(std::move(record));
    }
    QueryRecord rec;
    rec.query_id = queries_[i].id;
    rec.skipped = outcome.skipped;
    if (!outcome.skipped) {
      rec.loss = LossOf(outcome, mechanism.aggregation);
      rec.sim_time = outcome.sim_time_total + outcome.sim_time_comm;
      rec.wall_seconds = outcome.wall_seconds;
      rec.data_fraction_all = outcome.DataFractionOfAll();
      rec.samples_used = outcome.samples_used;
      rec.selected_nodes = outcome.selected_nodes.size();
    }
    records.push_back(rec);
  }
  return records;
}

std::string FormatMechanismTable(const std::vector<MechanismStats>& rows) {
  std::ostringstream out;
  out << StrFormat("%-12s %12s %12s %12s %12s %8s %8s\n", "mechanism",
                   "avg loss", "loss sd", "avg time(s)", "data used %",
                   "run", "skipped");
  for (const auto& r : rows) {
    out << StrFormat("%-12s %12.3f %12.3f %12.4f %12.2f %8zu %8zu\n",
                     r.label.c_str(), r.loss.mean(), r.loss.stddev(),
                     r.sim_time.mean(), 100.0 * r.data_fraction.mean(),
                     r.queries_run, r.queries_skipped);
  }
  return out.str();
}

}  // namespace qens::fl

namespace qens::fl {

std::string FormatQueryRecordsCsv(const std::vector<QueryRecord>& records) {
  std::ostringstream out;
  out << "query_id,skipped,loss,sim_time_s,wall_seconds,data_fraction,"
         "samples_used,selected_nodes\n";
  for (const auto& r : records) {
    out << StrFormat("%llu,%d,%.6f,%.6f,%.6f,%.6f,%zu,%zu\n",
                     static_cast<unsigned long long>(r.query_id),
                     r.skipped ? 1 : 0, r.loss, r.sim_time, r.wall_seconds,
                     r.data_fraction_all, r.samples_used, r.selected_nodes);
  }
  return out.str();
}

Status WriteQueryRecordsCsv(const std::vector<QueryRecord>& records,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out << FormatQueryRecordsCsv(records);
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace qens::fl
