#include "qens/fl/round_engine.h"

#include <algorithm>
#include <future>
#include <limits>
#include <optional>

#include "qens/fl/aggregation.h"
#include "qens/fl/dynamic_fleet.h"
#include "qens/ml/model_codec.h"
#include "qens/ml/model_io.h"
#include "qens/obs/metrics.h"
#include "qens/obs/trace.h"

namespace qens::fl {
namespace {

/// Apply a model-space corruption to a returned model, in place. Label
/// poisoning is handled participant-side; kNone and kLabelFlipPoisoning
/// leave the model untouched.
void ApplyModelCorruption(ml::SequentialModel* model,
                          sim::CorruptionKind kind, double gamma,
                          const ml::SequentialModel& reference) {
  if (kind == sim::CorruptionKind::kNone ||
      kind == sim::CorruptionKind::kLabelFlipPoisoning) {
    return;
  }
  std::vector<double> params = model->GetParameters();
  switch (kind) {
    case sim::CorruptionKind::kNanUpdate:
      for (double& p : params) p = std::numeric_limits<double>::quiet_NaN();
      break;
    case sim::CorruptionKind::kInfUpdate:
      for (double& p : params) p = std::numeric_limits<double>::infinity();
      break;
    case sim::CorruptionKind::kSignFlip:
      for (double& p : params) p = -p;
      break;
    case sim::CorruptionKind::kScaledUpdate: {
      const std::vector<double> ref = reference.GetParameters();
      for (size_t i = 0; i < params.size(); ++i) {
        params[i] = ref[i] + gamma * (params[i] - ref[i]);
      }
      break;
    }
    case sim::CorruptionKind::kNone:
    case sim::CorruptionKind::kLabelFlipPoisoning:
      break;
  }
  (void)model->SetParameters(params);  // Same size: cannot fail.
}

/// Inter-round merge under the configured robust aggregator.
Result<ml::SequentialModel> MergeRobust(
    const ByzantineOptions& byz,
    const std::vector<ml::SequentialModel>& models,
    const std::vector<double>& weights,
    const ml::SequentialModel& reference) {
  switch (byz.aggregator) {
    case AggregationKind::kFedAvgParameters:
      return FedAvgParameters(models, weights);
    case AggregationKind::kCoordinateMedian:
      return CoordinateMedianParameters(models);
    case AggregationKind::kTrimmedMean:
      return TrimmedMeanParameters(models, byz.trim_beta);
    case AggregationKind::kNormClippedFedAvg:
      return FedAvgNormClipped(models, weights, reference, byz.clip_norm);
    default:
      return Status::Internal("MergeRobust: non-parameter-space aggregator");
  }
}

}  // namespace

Result<RoundEngine::RoundSetResult> RoundEngine::Run(
    const std::vector<TrainJob>& jobs, ml::SequentialModel global,
    size_t rounds, size_t query_id, selection::PolicyKind policy,
    const LocalTrainOptions& local_options, size_t model_bytes,
    const data::Dataset* holdout, QueryOutcome* outcome) {
  const bool obs_on = obs::MetricsRegistry::Enabled();
  const sim::EdgeEnvironment& environment = *ctx_.environment;
  const FederationOptions& options = *ctx_.options;

  // Fault layer (opt-in). With no injector the loop below reproduces the
  // fault-free protocol exactly: every job trains, every send succeeds.
  const FaultToleranceOptions& ft = options.fault_tolerance;
  sim::FaultInjector* injector = ctx_.injector;
  const size_t leader_id = environment.leader_index();

  // Byzantine layer (opt-in): validator + quarantine + robust aggregation.
  const ByzantineOptions& byz = options.byzantine;
  const bool byz_on = byz.enabled;

  // Dynamic-fleet layer (opt-in): churn presence, drifted node data, and
  // online refresh. Like the fault layer, a departed node fails its round
  // and the quorum gate decides whether the partial update commits.
  const bool dyn_on = ctx_.dynamic != nullptr;

  // Wire layer (opt-in): with it off, no codec is ever invoked and byte
  // accounting uses the historical text-serializer sizes. With it on, both
  // link directions are priced by the codec's closed-form size — O(layers),
  // architecture-determined, identical for every trained model — which is
  // what lets the planner pin its estimates exactly.
  const ml::WireOptions& wire = options.wire;
  const bool wire_on = wire.enabled;
  const ml::WireCodecKind down_kind = ml::DownlinkKind(wire);
  const ml::WireCodecKind up_kind = ml::UplinkKind(wire);
  const size_t wire_up_bytes =
      wire_on ? ml::EncodedModelBytes(global, up_kind, wire.top_k_fraction)
              : 0;

  // Per-job fate this round, precomputed from the injector's pure schedule
  // so training can still fan out in parallel.
  struct JobFate {
    bool quarantined = false;   ///< Sat out: still serving a quarantine.
    bool unavailable = false;   ///< Crashed or transiently offline.
    size_t down_attempts = 1;   ///< model-down transmissions performed.
    bool down_delivered = true;
    double slowdown = 1.0;
    sim::CorruptionKind corruption = sim::CorruptionKind::kNone;
  };

  auto record_once = [](std::vector<size_t>* list, size_t node_id) {
    if (std::find(list->begin(), list->end(), node_id) == list->end()) {
      list->push_back(node_id);
    }
  };

  std::vector<ml::SequentialModel> local_models;
  std::vector<double> eq7_weights;
  std::vector<double> fedavg_weights;  // Samples trained, per local model.
  std::vector<size_t> survivor_jobs;   // Job index behind each local model.
  std::vector<bool> final_alive(jobs.size(), false);
  for (size_t round = 0; round < rounds; ++round) {
    obs::TraceSpan round_span("federation.round");
    obs::Count("federation.rounds");

    // Advance the dynamic fleet before any node work: churn transitions,
    // drift events, and (when enabled) profile refreshes all land here, on
    // the driving thread, so the trajectory is worker-count independent.
    DynamicFleet::RoundStats dyn_stats;
    if (dyn_on) {
      QENS_ASSIGN_OR_RETURN(dyn_stats, ctx_.dynamic->BeginRound(ctx_.leader));
      outcome->nodes_joined += dyn_stats.nodes_joined;
      outcome->nodes_left += dyn_stats.nodes_left;
      outcome->fleet_refreshes += dyn_stats.refreshes;
      outcome->fleet_epoch = dyn_stats.fleet_epoch;
    }
    local_models.clear();
    eq7_weights.clear();
    fedavg_weights.clear();
    survivor_jobs.clear();
    std::fill(final_alive.begin(), final_alive.end(), false);
    double round_parallel = 0.0;
    double round_train = 0.0;
    double round_comm = 0.0;
    size_t round_wire_down = 0;  ///< Bytes offered down-link (wire layer).
    size_t round_wire_up = 0;    ///< Bytes offered up-link (wire layer).

    // Under a lossy down-link codec the participants train on exactly what
    // the wire delivers: decode(encode(global)). Raw keeps `global` itself
    // (bit-exact round-trip), so the fault-free raw run matches the
    // wire-off run in everything but byte accounting.
    const ml::SequentialModel* broadcast = &global;
    ml::SequentialModel broadcast_storage;
    if (wire_on && ml::WireCodecIsLossy(down_kind)) {
      QENS_ASSIGN_OR_RETURN(
          const std::string encoded,
          ml::EncodeModel(global, down_kind, wire.top_k_fraction));
      QENS_ASSIGN_OR_RETURN(broadcast_storage, ml::DecodeModel(encoded));
      broadcast = &broadcast_storage;
    }

    obs::RoundRecord record;
    if (obs_on) {
      record.session = ctx_.session_id;
      record.query_id = query_id;
      record.round = round;
      record.policy = selection::PolicyKindName(policy);
      record.aggregation = round + 1 < rounds ? "fedavg" : "ensemble";
      record.engaged = jobs.size();
      record.nodes.reserve(jobs.size());
    }
    auto record_node = [&](size_t node_id, obs::NodeFate node_fate,
                           double train_s, double comm_s, size_t samples,
                           bool straggler) {
      if (!obs_on) return;
      obs::NodeRoundStat stat;
      stat.node_id = node_id;
      stat.fate = node_fate;
      stat.train_seconds = train_s;
      stat.comm_seconds = comm_s;
      stat.samples_used = samples;
      stat.straggler = straggler;
      record.nodes.push_back(stat);
    };

    // Evaluate this round's fate for every job before any training runs.
    const size_t fault_round = injector ? (*ctx_.fault_round)++ : 0;
    const size_t byz_round = byz_on ? (*ctx_.byz_round)++ : 0;
    std::vector<JobFate> fates(jobs.size());
    if (byz_on && byz.quarantine_rounds > 0) {
      for (size_t j = 0; j < jobs.size(); ++j) {
        if ((*ctx_.quarantine_until)[jobs[j].node_id] > byz_round) {
          fates[j].quarantined = true;
        }
      }
    }
    if (dyn_on) {
      // Churn: a selected node that is absent this round simply fails it
      // (no transfer is attempted — the device is gone, not slow).
      for (size_t j = 0; j < jobs.size(); ++j) {
        if (fates[j].quarantined) continue;
        if (!ctx_.dynamic->IsPresent(jobs[j].node_id)) {
          fates[j].unavailable = true;
        }
      }
    }
    if (injector) {
      for (size_t j = 0; j < jobs.size(); ++j) {
        JobFate& fate = fates[j];
        if (fate.quarantined || fate.unavailable) continue;
        if (!injector->IsAvailable(jobs[j].node_id, fault_round)) {
          fate.unavailable = true;
          continue;
        }
        fate.slowdown = injector->SlowdownFactor(jobs[j].node_id, fault_round);
        fate.corruption = injector->CorruptionFor(jobs[j].node_id, fault_round);
        fate.down_delivered = false;
        fate.down_attempts = 0;
        for (size_t attempt = 0; attempt < ft.max_send_attempts; ++attempt) {
          ++fate.down_attempts;
          if (!injector->LoseMessage(leader_id, jobs[j].node_id, fault_round,
                                     attempt)) {
            fate.down_delivered = true;
            break;
          }
        }
      }
    }
    auto job_trains = [&](size_t j) {
      return !fates[j].quarantined && !fates[j].unavailable &&
             fates[j].down_delivered;
    };

    // Run every training job (concurrently when configured), then account
    // the results in job order so outcomes stay deterministic.
    auto run_job = [&](const TrainJob& job, sim::CorruptionKind corruption)
        -> Result<LocalTrainResult> {
      // Under the dynamic layer training reads the session's drifted copy
      // of the node (identical to the fleet's until its first drift event).
      const sim::EdgeNode& node = ctx_.dynamic != nullptr
                                      ? ctx_.dynamic->node(job.node_id)
                                      : environment.node(job.node_id);
      LocalTrainOptions job_options = local_options;
      if (corruption == sim::CorruptionKind::kLabelFlipPoisoning) {
        job_options.poison_labels = true;
      }
      if (job.selective) {
        return TrainOnSupportingClusters(node, *broadcast, job.supporting,
                                         job_options,
                                         environment.cost_model());
      }
      return TrainOnFullData(node, *broadcast, job_options,
                             environment.cost_model());
    };
    std::vector<std::optional<Result<LocalTrainResult>>> results(jobs.size());
    if (options.parallel_local_training && jobs.size() > 1) {
      // Jobs go onto the shared pool (created once, reused across rounds
      // and queries) instead of spawning one thread per node per round.
      // Oversubscribed rounds (jobs > workers) simply queue; results are
      // consumed in submission order, so outcomes are independent of both
      // the worker count and the completion order.
      if (*ctx_.pool == nullptr) {
        const size_t workers = options.max_parallel_nodes > 0
                                   ? options.max_parallel_nodes
                                   : common::ThreadPool::DefaultThreadCount();
        *ctx_.pool = std::make_unique<common::ThreadPool>(workers);
      }
      std::vector<std::future<Result<LocalTrainResult>>> futures(jobs.size());
      for (size_t j = 0; j < jobs.size(); ++j) {
        if (!job_trains(j)) continue;
        const TrainJob& job = jobs[j];
        const sim::CorruptionKind corruption = fates[j].corruption;
        futures[j] = (*ctx_.pool)->Submit([&run_job, &job, corruption] {
          return run_job(job, corruption);
        });
      }
      for (size_t j = 0; j < jobs.size(); ++j) {
        if (futures[j].valid()) results[j] = futures[j].get();
      }
    } else {
      for (size_t j = 0; j < jobs.size(); ++j) {
        if (job_trains(j)) results[j] = run_job(jobs[j], fates[j].corruption);
      }
    }

    for (size_t j = 0; j < jobs.size(); ++j) {
      const TrainJob& job = jobs[j];
      const size_t node_id = job.node_id;
      const sim::EdgeNode& node =
          dyn_on ? ctx_.dynamic->node(node_id) : environment.node(node_id);
      if (round == 0) outcome->samples_selected += node.NumSamples();
      const double rank_weight = job.rank_weight;
      const JobFate& fate = fates[j];

      if (fate.quarantined) {
        // Serving a quarantine: skipped without a reliability penalty (the
        // node was never asked to train this round).
        record_once(&outcome->quarantined_nodes, node_id);
        ++outcome->quarantined_skips;
        obs::Count("federation.nodes.quarantined");
        record_node(node_id, obs::NodeFate::kQuarantined, 0.0, 0.0, 0, false);
        if (obs_on) ++record.quarantined;
        continue;
      }
      if (fate.unavailable) {
        // Crashed or offline: contributes nothing, costs nothing.
        record_once(&outcome->failed_nodes, node_id);
        ctx_.leader->RecordRoundResult(node_id, Leader::RoundResult::kFailed);
        obs::Count("federation.nodes.unavailable");
        record_node(node_id, obs::NodeFate::kUnavailable, 0.0, 0.0, 0, false);
        continue;
      }
      if (results[j].has_value()) {
        QENS_RETURN_NOT_OK(results[j]->status());
      }

      // Model-down transfer(s): lost transmissions are retried with
      // backoff; all time is accounted against the round.
      double down_seconds = 0.0;
      for (size_t attempt = 0; attempt < fate.down_attempts; ++attempt) {
        const bool lost =
            attempt + 1 < fate.down_attempts || !fate.down_delivered;
        if (wire_on && obs_on) round_wire_down += model_bytes;
        down_seconds += ctx_.transport->Send(
            leader_id, node_id, model_bytes,
            lost ? "model-down-lost" : "model-down");
        if (lost) {
          down_seconds += ft.retry_backoff_s;
          ++outcome->messages_lost;
          obs::Count("federation.messages.lost");
        }
      }
      outcome->send_retries += fate.down_attempts - 1;
      outcome->sim_time_comm += down_seconds;
      round_comm += down_seconds;
      if (!fate.down_delivered) {
        // The global model never reached the node: no training happened,
        // but the leader still spent the failed transmissions + backoff on
        // this participant, so that wait is on the round's critical path
        // (capped at the deadline like any other wait).
        record_once(&outcome->failed_nodes, node_id);
        ctx_.leader->RecordRoundResult(node_id, Leader::RoundResult::kFailed);
        round_parallel = std::max(
            round_parallel, ft.round_deadline_s > 0.0
                                ? std::min(down_seconds, ft.round_deadline_s)
                                : down_seconds);
        obs::Count("federation.nodes.send_failed");
        record_node(node_id, obs::NodeFate::kSendFailed, 0.0, down_seconds, 0,
                    false);
        continue;
      }

      LocalTrainResult& result = results[j]->value();
      if (injector && fate.corruption != sim::CorruptionKind::kNone) {
        // Byzantine node: the model that goes on the wire is the corrupted
        // one (upload bytes and all downstream screening see it). The
        // corruption is applied node-side, so its reference is the model
        // the node actually received (the decoded broadcast).
        ApplyModelCorruption(&result.model, fate.corruption,
                             injector->plan().options().corruption_gamma,
                             *broadcast);
      }
      if (round == 0) outcome->samples_used += result.samples_used;
      const double train_seconds = result.sim_train_seconds * fate.slowdown;
      outcome->sim_time_total += train_seconds;
      round_train += train_seconds;
      double node_seconds = down_seconds + train_seconds;

      // Deadline gate 1: a straggler whose download + training already
      // exceeds the deadline is cut before it even uploads; the leader
      // stops waiting at the deadline.
      if (injector && ft.round_deadline_s > 0.0 &&
          node_seconds > ft.round_deadline_s) {
        record_once(&outcome->deadline_missed_nodes, node_id);
        ctx_.leader->RecordRoundResult(node_id,
                                       Leader::RoundResult::kMissedDeadline);
        round_parallel = std::max(round_parallel, ft.round_deadline_s);
        obs::Count("federation.nodes.missed_deadline");
        record_node(node_id, obs::NodeFate::kMissedDeadline, train_seconds,
                    down_seconds, result.samples_used, fate.slowdown > 1.0);
        continue;
      }

      // Model-up transfer(s), with the same retry/backoff policy. Under the
      // codec the size is closed-form and shared by every trained model
      // (architecture-determined); the historical text path must measure
      // each model because hex-float lengths drift with the values.
      const size_t up_bytes =
          wire_on ? wire_up_bytes : ml::SerializedModelBytes(result.model);
      bool up_delivered = true;
      size_t up_attempts = 1;
      if (injector) {
        up_delivered = false;
        up_attempts = 0;
        for (size_t attempt = 0; attempt < ft.max_send_attempts; ++attempt) {
          ++up_attempts;
          if (!injector->LoseMessage(node_id, leader_id, fault_round,
                                     attempt)) {
            up_delivered = true;
            break;
          }
        }
      }
      double up_seconds = 0.0;
      for (size_t attempt = 0; attempt < up_attempts; ++attempt) {
        const bool lost = attempt + 1 < up_attempts || !up_delivered;
        if (wire_on && obs_on) round_wire_up += up_bytes;
        up_seconds += ctx_.transport->Send(
            node_id, leader_id, up_bytes, lost ? "model-up-lost" : "model-up");
        if (lost) {
          up_seconds += ft.retry_backoff_s;
          ++outcome->messages_lost;
          obs::Count("federation.messages.lost");
        }
      }
      outcome->send_retries += up_attempts - 1;
      outcome->sim_time_comm += up_seconds;
      round_comm += up_seconds;
      node_seconds += up_seconds;

      if (!up_delivered) {
        record_once(&outcome->failed_nodes, node_id);
        ctx_.leader->RecordRoundResult(node_id, Leader::RoundResult::kFailed);
        round_parallel = std::max(
            round_parallel, ft.round_deadline_s > 0.0
                                ? std::min(node_seconds, ft.round_deadline_s)
                                : node_seconds);
        obs::Count("federation.nodes.send_failed");
        record_node(node_id, obs::NodeFate::kSendFailed, train_seconds,
                    down_seconds + up_seconds, result.samples_used,
                    fate.slowdown > 1.0);
        continue;
      }
      // Deadline gate 2: the upload itself can push a participant past
      // the deadline (e.g. retry backoff) — the model arrives too late.
      if (injector && ft.round_deadline_s > 0.0 &&
          node_seconds > ft.round_deadline_s) {
        record_once(&outcome->deadline_missed_nodes, node_id);
        ctx_.leader->RecordRoundResult(node_id,
                                       Leader::RoundResult::kMissedDeadline);
        round_parallel = std::max(round_parallel, ft.round_deadline_s);
        obs::Count("federation.nodes.missed_deadline");
        record_node(node_id, obs::NodeFate::kMissedDeadline, train_seconds,
                    down_seconds + up_seconds, result.samples_used,
                    fate.slowdown > 1.0);
        continue;
      }

      if (injector) {
        // Under the byzantine layer the completion credit waits until the
        // validator has ruled on this update (a rejection books the round
        // as kRejected instead).
        if (!byz_on) {
          ctx_.leader->RecordRoundResult(node_id,
                                         Leader::RoundResult::kCompleted);
        }
        // Under faults the round's critical path includes transfers,
        // retries, and the straggler slowdown.
        round_parallel = std::max(round_parallel, node_seconds);
      } else {
        round_parallel = std::max(round_parallel, train_seconds);
      }
      obs::Count("federation.nodes.completed");
      record_node(node_id, obs::NodeFate::kCompleted, train_seconds,
                  down_seconds + up_seconds, result.samples_used,
                  fate.slowdown > 1.0);
      if (wire_on && ml::WireCodecIsLossy(up_kind)) {
        // What the leader aggregates is what the wire delivered: the
        // broadcast plus the decoded (quantized / sparsified) delta. Note a
        // quantized delta cannot transmit NaN/Inf — non-finite coordinates
        // collapse to the broadcast value (top-k sends them verbatim).
        QENS_ASSIGN_OR_RETURN(
            const std::string encoded,
            ml::EncodeModelDelta(result.model, *broadcast, up_kind,
                                 wire.top_k_fraction));
        QENS_ASSIGN_OR_RETURN(result.model,
                              ml::DecodeModelDelta(encoded, *broadcast));
      }
      final_alive[j] = true;
      local_models.push_back(result.model);
      eq7_weights.push_back(rank_weight);
      fedavg_weights.push_back(
          std::max(1.0, static_cast<double>(result.samples_used)));
      survivor_jobs.push_back(j);
    }
    // Byzantine screening: every delivered update faces the validator
    // before it can influence any aggregate. Rejected updates are dropped
    // from the survivor set, booked against the node's reliability, and
    // (optionally) start a quarantine.
    if (byz_on && !local_models.empty()) {
      const Matrix* holdout_x = nullptr;
      const Matrix* holdout_y = nullptr;
      if (ctx_.validator->wants_holdout()) {
        holdout_x = &holdout->features();
        holdout_y = &holdout->targets();
      }
      QENS_ASSIGN_OR_RETURN(
          ValidationReport screening,
          ctx_.validator->Validate(local_models, global, holdout_x,
                                   holdout_y));
      if (screening.rejected() > 0) {
        outcome->rejected_non_finite += screening.rejected_non_finite;
        outcome->rejected_abs_norm += screening.rejected_abs_norm;
        outcome->rejected_norm_outlier += screening.rejected_norm_outlier;
        outcome->rejected_holdout += screening.rejected_holdout;
        std::vector<ml::SequentialModel> kept_models;
        std::vector<double> kept_eq7;
        std::vector<double> kept_fedavg;
        std::vector<size_t> kept_jobs;
        for (size_t i = 0; i < local_models.size(); ++i) {
          const size_t j = survivor_jobs[i];
          const size_t node_id = jobs[j].node_id;
          if (screening.verdicts[i].accepted) {
            ctx_.leader->RecordRoundResult(node_id,
                                           Leader::RoundResult::kCompleted);
            kept_models.push_back(std::move(local_models[i]));
            kept_eq7.push_back(eq7_weights[i]);
            kept_fedavg.push_back(fedavg_weights[i]);
            kept_jobs.push_back(j);
            continue;
          }
          final_alive[j] = false;
          record_once(&outcome->rejected_nodes, node_id);
          ++outcome->rejected_updates;
          ctx_.leader->RecordRoundResult(node_id,
                                         Leader::RoundResult::kRejected);
          if (byz.quarantine_rounds > 0) {
            (*ctx_.quarantine_until)[node_id] =
                byz_round + 1 + byz.quarantine_rounds;
          }
          obs::Count("federation.nodes.rejected");
          if (obs_on) {
            ++record.rejected;
            for (obs::NodeRoundStat& stat : record.nodes) {
              if (stat.node_id == node_id &&
                  stat.fate == obs::NodeFate::kCompleted) {
                stat.fate = obs::NodeFate::kRejected;
                break;
              }
            }
          }
        }
        local_models = std::move(kept_models);
        eq7_weights = std::move(kept_eq7);
        fedavg_weights = std::move(kept_fedavg);
        survivor_jobs = std::move(kept_jobs);
      } else {
        // Every delivered update passed: book the deferred completions.
        for (size_t i = 0; i < local_models.size(); ++i) {
          ctx_.leader->RecordRoundResult(jobs[survivor_jobs[i]].node_id,
                                         Leader::RoundResult::kCompleted);
        }
      }
    }

    // Rounds run in parallel across nodes but sequentially in time.
    outcome->sim_time_parallel += round_parallel;
    outcome->round_survivors.push_back(local_models.size());

    if (obs_on) {
      record.survivors = local_models.size();
      record.quorum_met =
          (!injector && !byz_on && !dyn_on) ||
          MeetsQuorum(local_models.size(), jobs.size(), ft.min_quorum_frac);
      record.fleet_epoch = dyn_stats.fleet_epoch;
      record.nodes_joined = dyn_stats.nodes_joined;
      record.nodes_left = dyn_stats.nodes_left;
      record.refreshes = dyn_stats.refreshes;
      record.stale_rounds = dyn_stats.stale_rounds;
      record.parallel_seconds = round_parallel;
      record.total_train_seconds = round_train;
      record.comm_seconds = round_comm;
      record.wire_down_bytes = round_wire_down;
      record.wire_up_bytes = round_wire_up;
      obs::Observe("federation.round.parallel_seconds", round_parallel);
      outcome->round_records.push_back(std::move(record));
    }

    if ((injector || byz_on || dyn_on) &&
        !MeetsQuorum(local_models.size(), jobs.size(), ft.min_quorum_frac)) {
      // Below quorum: discard the partial update; the previous global
      // model carries into the next round (or becomes the final answer).
      ++outcome->degraded_rounds;
      obs::Count("federation.rounds.degraded");
      local_models.clear();
      eq7_weights.clear();
      fedavg_weights.clear();
      survivor_jobs.clear();
      std::fill(final_alive.begin(), final_alive.end(), false);
      continue;
    }
    if (local_models.empty()) {
      if (!injector && !byz_on && !dyn_on) break;
      continue;  // A later round may still gather survivors.
    }
    if (round + 1 < rounds) {
      // Merge the locals into the next round's global model: FedAvg on the
      // paper path, the configured robust aggregator under the byzantine
      // layer.
      if (byz_on) {
        QENS_ASSIGN_OR_RETURN(
            global, MergeRobust(byz, local_models, fedavg_weights, global));
      } else {
        QENS_ASSIGN_OR_RETURN(global,
                              FedAvgParameters(local_models, fedavg_weights));
      }
    }
  }

  if ((injector || byz_on || dyn_on) && local_models.empty()) {
    // Graceful degradation: answer with the last committed global model
    // rather than failing the query outright.
    local_models.push_back(global.Clone());
    eq7_weights.push_back(1.0);
  }

  if (injector && std::find(final_alive.begin(), final_alive.end(), true) !=
                      final_alive.end()) {
    // Survivor-renormalized Eq. 7 weights over the engaged jobs (exposed
    // for diagnostics; the final ensemble normalizes equivalently).
    std::vector<double> job_weights(jobs.size());
    for (size_t j = 0; j < jobs.size(); ++j) {
      job_weights[j] = jobs[j].rank_weight;
    }
    QENS_ASSIGN_OR_RETURN(outcome->survivor_weights,
                          PartialWeights(job_weights, final_alive));
  }

  return RoundSetResult{std::move(local_models), std::move(eq7_weights),
                        std::move(global)};
}

}  // namespace qens::fl
