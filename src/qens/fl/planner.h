#ifndef QENS_FL_PLANNER_H_
#define QENS_FL_PLANNER_H_

/// \file planner.h
/// Leader-side query planning: BEFORE engaging anyone, predict what a
/// query will cost — which nodes would be selected, how many rows they
/// would train on, how long local training should take, and how many bytes
/// will move. Everything is computed from the published cluster digests
/// and the platform cost model; no node is contacted and no data is read.
///
/// This is the natural composition of the paper's machinery: the ranking
/// (Eqs. 2-4) chooses the nodes, the digests bound the data, and the cost
/// model (Fig. 8's time axis) prices the round. An application can use the
/// plan to tune epsilon / top-l, to budget a query stream, or to reject
/// queries that would touch too little (or too much) data.

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "qens/common/status.h"
#include "qens/ml/model_codec.h"
#include "qens/ml/model_factory.h"
#include "qens/query/range_query.h"
#include "qens/selection/node_profile.h"
#include "qens/selection/policies.h"
#include "qens/selection/ranking.h"
#include "qens/sim/cost_model.h"

namespace qens::fl {

/// Planner configuration: the same knobs the federation runs with.
struct PlannerOptions {
  selection::RankingOptions ranking;
  selection::QueryDrivenOptions selection;
  /// Local epochs per supporting cluster (prices the training time).
  size_t epochs_per_cluster = 20;
  /// Model the round would train (prices the model transfer bytes).
  ml::HyperParams hyper = ml::PaperHyperParams(ml::ModelKind::kLinearRegression);
  sim::CostModelOptions cost;
  /// Session seed the query would run under. When set, the plan prices the
  /// EXACT model the session would broadcast (init stream from
  /// fl::ModelInitSeed), so est_comm_bytes matches the executed transfer
  /// byte-for-byte — under the text serializer the size depends on the
  /// weight digits. Unset = a representative fixed-seed instance (close,
  /// not exact). With `wire.enabled` the codec size is
  /// architecture-determined, so the estimate is exact either way.
  std::optional<uint64_t> session_seed;
  /// Must match FederationOptions::wire of the session that will execute
  /// the query: prices both link directions with the codec's closed-form
  /// sizes (down-link absolute codec, up-link delta codec).
  ml::WireOptions wire;
  /// Must match FederationOptions::strong_seed_mix (see fl/seed_derivation.h).
  bool strong_seed_mix = false;
};

/// One selected node's predicted contribution.
struct NodePlan {
  size_t node_id = 0;
  double ranking = 0.0;            ///< r_i (Eq. 4).
  size_t supporting_clusters = 0;  ///< K'.
  size_t supporting_samples = 0;   ///< Rows of supporting clusters.
  double estimated_rows = 0.0;     ///< Digest-density rows inside the query.
  double est_train_seconds = 0.0;  ///< Cost-model local training time.
};

/// The full pre-execution plan for one query.
struct QueryPlan {
  query::RangeQuery query;
  std::vector<NodePlan> nodes;        ///< Selected nodes, ranking order.
  size_t total_supporting_samples = 0;
  double total_estimated_rows = 0.0;
  double est_round_seconds = 0.0;     ///< max(node train) + transfers.
  size_t est_comm_bytes = 0;          ///< Model down+up for every node.
  bool executable = false;            ///< False when nothing supports q.

  std::string ToString() const;
};

/// Build the plan. `capacities` aligns with `profiles` by index (empty =
/// all 1.0). Fails on ranking errors (dimension mismatch, bad epsilon).
Result<QueryPlan> PlanQuery(const std::vector<selection::NodeProfile>& profiles,
                            const std::vector<double>& capacities,
                            const query::RangeQuery& query,
                            const PlannerOptions& options);

}  // namespace qens::fl

#endif  // QENS_FL_PLANNER_H_
