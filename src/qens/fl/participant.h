#ifndef QENS_FL_PARTICIPANT_H_
#define QENS_FL_PARTICIPANT_H_

/// \file participant.h
/// The participant-side of one federated round (Section IV): receive the
/// initial global model w from the leader, train it locally — either
/// incrementally over the supporting clusters only (the paper's data
/// selectivity, Section IV-A: "each cluster represents a mini-batch") or on
/// the node's whole dataset (the baseline) — and return the local model
/// w_i^E together with the training cost accounting.

#include <cstdint>
#include <vector>

#include "qens/common/status.h"
#include "qens/ml/model_factory.h"
#include "qens/sim/cost_model.h"
#include "qens/sim/edge_node.h"

namespace qens::fl {

/// Local-training configuration for one participant round.
struct LocalTrainOptions {
  ml::HyperParams hyper;     ///< Model/optimizer config (Table III).
  /// Local epochs E spent on each supporting cluster (the paper's "E rounds
  /// of local iterations on each supporting cluster"). When training on the
  /// whole dataset (no selectivity), `hyper.epochs` is used instead.
  size_t epochs_per_cluster = 20;
  uint64_t seed = 7;
  /// Byzantine label-flip poisoning (sim::CorruptionKind::kLabelFlipPoisoning):
  /// train honestly but on targets mirrored within their observed range
  /// (y' = lo + hi - y). The returned parameters are finite and
  /// plausible-looking, which is what makes this attack hard to screen.
  bool poison_labels = false;
};

/// What the participant sends back (plus local accounting).
struct LocalTrainResult {
  ml::SequentialModel model;       ///< w_i^E.
  size_t samples_used = 0;         ///< Distinct rows trained on.
  size_t samples_total = 0;        ///< Node's full dataset size.
  size_t samples_seen = 0;         ///< rows x epochs consumed.
  double sim_train_seconds = 0.0;  ///< Cost-model training time.
  double wall_seconds = 0.0;       ///< Measured wall time of the C++ fit.
  std::vector<double> cluster_final_loss;  ///< Last train loss per cluster.
};

/// Train `global_model` (copied, not mutated) on the node's supporting
/// clusters, sequentially (cluster-incremental). `supporting_clusters` must
/// be non-empty with valid, non-empty cluster ids.
Result<LocalTrainResult> TrainOnSupportingClusters(
    const sim::EdgeNode& node, const ml::SequentialModel& global_model,
    const std::vector<size_t>& supporting_clusters,
    const LocalTrainOptions& options, const sim::CostModel& cost_model);

/// Baseline: train on the node's entire local dataset (no query awareness).
Result<LocalTrainResult> TrainOnFullData(const sim::EdgeNode& node,
                                         const ml::SequentialModel& global_model,
                                         const LocalTrainOptions& options,
                                         const sim::CostModel& cost_model);

}  // namespace qens::fl

#endif  // QENS_FL_PARTICIPANT_H_
