#ifndef QENS_FL_SEED_DERIVATION_H_
#define QENS_FL_SEED_DERIVATION_H_

/// \file seed_derivation.h
/// The one place the per-query model-initialization seed is derived — the
/// planner and the session MUST agree on it bit-for-bit, or the planner's
/// dry-run model (and therefore its byte estimates under the text
/// serializer) would diverge from the model the session actually trains.
///
/// The historical derivation is the affine map `seed * 1000003 + query_id`.
/// It is NOT injective across sessions: (seed, id) and (seed + 1,
/// id - 1000003) collide whenever ids reach 1000003, so two different
/// sessions can initialize identical models for different queries. A full
/// 64-bit finalizer (SplitMix64's mixer: every input bit avalanches into
/// every output bit, and the map is bijective per seed) fixes that, but
/// changes every historical output — so it sits behind the opt-in
/// `strong_seed_mix` flag (FederationOptions / PlannerOptions) and the
/// default remains byte-identical to the historical behavior.

#include <cstdint>

namespace qens::fl {

/// Seed for the global model's weight initialization for `query_id` under
/// `session_seed`. Both the QuerySession round driver and the Planner's
/// dry-run must call this — never inline the formula.
inline uint64_t ModelInitSeed(uint64_t session_seed, uint64_t query_id,
                              bool strong_mix = false) {
  if (!strong_mix) {
    // Historical affine map (collision-prone across sessions, kept for
    // byte-identical default outputs).
    return session_seed * 1000003ull + query_id;
  }
  // SplitMix64 finalizer over the golden-ratio-separated pair: bijective in
  // each argument, full avalanche, no cross-session collisions for
  // distinct (seed, id) pairs within a session's id space.
  uint64_t z = session_seed + 0x9e3779b97f4a7c15ull * (query_id + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace qens::fl

#endif  // QENS_FL_SEED_DERIVATION_H_
