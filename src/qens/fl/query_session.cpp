#include "qens/fl/query_session.h"

#include <algorithm>
#include <utility>

#include "qens/common/rng.h"
#include "qens/common/stopwatch.h"
#include "qens/common/string_util.h"
#include "qens/data/splitter.h"
#include "qens/fl/aggregation.h"
#include "qens/fl/round_engine.h"
#include "qens/fl/seed_derivation.h"
#include "qens/ml/loss.h"
#include "qens/ml/model_codec.h"
#include "qens/ml/model_io.h"
#include "qens/obs/metrics.h"
#include "qens/obs/trace.h"
#include "qens/selection/policies.h"

namespace qens::fl {

Result<std::shared_ptr<Fleet>> Fleet::Create(
    std::vector<data::Dataset> node_data, const FederationOptions& options) {
  if (node_data.empty()) {
    return Status::InvalidArgument("federation: no nodes");
  }
  if (options.test_fraction <= 0.0 || options.test_fraction >= 1.0) {
    return Status::InvalidArgument(
        "federation: test_fraction must be in (0, 1)");
  }

  std::vector<data::Dataset> train_shards;
  std::vector<data::Dataset> test_shards;
  train_shards.reserve(node_data.size());
  test_shards.reserve(node_data.size());
  for (size_t i = 0; i < node_data.size(); ++i) {
    QENS_ASSIGN_OR_RETURN(
        data::TrainTestSplit split,
        data::SplitTrainTest(node_data[i], options.test_fraction,
                             options.seed + 31 * i));
    train_shards.push_back(std::move(split.train));
    test_shards.push_back(std::move(split.test));
  }

  // Raw-unit global data space: hull of every node's (train) feature box.
  QENS_ASSIGN_OR_RETURN(query::HyperRectangle raw_space,
                        train_shards[0].FeatureSpace());
  for (size_t i = 1; i < train_shards.size(); ++i) {
    QENS_ASSIGN_OR_RETURN(query::HyperRectangle space,
                          train_shards[i].FeatureSpace());
    QENS_ASSIGN_OR_RETURN(raw_space, raw_space.Hull(space));
  }

  // Leader-coordinated min-max normalization: the scaling constants are the
  // global per-dimension bounds, which in the real protocol come straight
  // from the cluster boundaries the nodes already publish.
  std::optional<data::Normalizer> feature_norm;
  std::optional<data::Normalizer> target_norm;
  if (options.normalize) {
    // Pool features/targets to fit the global bounds (numerically equal to
    // the hull of per-node bounds for min-max scaling).
    data::Dataset pooled = train_shards[0];
    for (size_t i = 1; i < train_shards.size(); ++i) {
      QENS_ASSIGN_OR_RETURN(pooled, pooled.Concat(train_shards[i]));
    }
    QENS_ASSIGN_OR_RETURN(
        data::Normalizer fn,
        data::Normalizer::Fit(pooled.features(), data::ScalingKind::kMinMax));
    QENS_ASSIGN_OR_RETURN(
        data::Normalizer tn,
        data::Normalizer::Fit(pooled.targets(), data::ScalingKind::kMinMax));
    feature_norm = std::move(fn);
    target_norm = std::move(tn);

    auto transform_shard = [&](data::Dataset* shard) -> Status {
      QENS_ASSIGN_OR_RETURN(Matrix f,
                            feature_norm->Transform(shard->features()));
      QENS_ASSIGN_OR_RETURN(Matrix t, target_norm->Transform(shard->targets()));
      QENS_ASSIGN_OR_RETURN(
          *shard, data::Dataset::Create(std::move(f), std::move(t),
                                        shard->feature_names(),
                                        shard->target_name()));
      return Status::OK();
    };
    for (auto& shard : train_shards) QENS_RETURN_NOT_OK(transform_shard(&shard));
    for (auto& shard : test_shards) QENS_RETURN_NOT_OK(transform_shard(&shard));
  }

  QENS_ASSIGN_OR_RETURN(
      sim::EdgeEnvironment environment,
      sim::EdgeEnvironment::Create(std::move(train_shards),
                                   options.environment));

  // Opt-in sublinear ranking: one immutable spatial index over the
  // published profiles, shared read-only by every session's leader.
  std::shared_ptr<const selection::ClusterIndex> ranking_index;
  if (options.ranking.use_index) {
    QENS_ASSIGN_OR_RETURN(std::vector<selection::NodeProfile> profiles,
                          environment.Profiles());
    selection::ClusterIndexOptions index_options;
    index_options.bins_per_dim = options.ranking.index_bins_per_dim;
    QENS_ASSIGN_OR_RETURN(
        selection::ClusterIndex index,
        selection::ClusterIndex::Build(profiles, index_options));
    ranking_index =
        std::make_shared<const selection::ClusterIndex>(std::move(index));
  }

  return std::make_shared<Fleet>(
      Fleet{std::move(environment), std::move(test_shards), options,
            std::move(raw_space), std::move(feature_norm),
            std::move(target_norm), std::move(ranking_index)});
}

Result<query::RangeQuery> Fleet::InternalQuery(
    const query::RangeQuery& query) const {
  if (!feature_norm.has_value()) return query;
  query::RangeQuery internal = query;
  QENS_ASSIGN_OR_RETURN(internal.region,
                        feature_norm->TransformBox(query.region));
  return internal;
}

double Fleet::DenormalizeMse(double mse) const {
  if (!target_norm.has_value()) return mse;
  const double scale = target_norm->scale()[0];  // y_norm = (y - off) * scale
  if (scale == 0.0) return mse;
  return mse / (scale * scale);
}

Result<data::Dataset> Fleet::QueryRegionTestData(
    const query::RangeQuery& query) const {
  QENS_ASSIGN_OR_RETURN(query::RangeQuery internal, InternalQuery(query));
  std::optional<data::Dataset> pooled;
  for (const auto& shard : test_shards) {
    QENS_ASSIGN_OR_RETURN(std::vector<size_t> rows,
                          internal.MatchingRows(shard.features()));
    if (rows.empty()) continue;
    QENS_ASSIGN_OR_RETURN(data::Dataset subset, shard.SelectRows(rows));
    if (!pooled.has_value()) {
      pooled = std::move(subset);
    } else {
      QENS_ASSIGN_OR_RETURN(pooled.value(), pooled->Concat(subset));
    }
  }
  if (!pooled.has_value()) {
    return Status::NotFound("no test rows inside the query region");
  }
  return std::move(pooled.value());
}

Result<QuerySession> QuerySession::Create(std::shared_ptr<const Fleet> fleet,
                                          const QuerySessionOptions& options,
                                          sim::Network* shared_network) {
  if (fleet == nullptr) {
    return Status::InvalidArgument("query session: null fleet");
  }
  const FederationOptions& fopts = fleet->options;
  const size_t num_nodes = fleet->environment.num_nodes();

  // The session's leader starts from the fleet's published profiles and
  // accumulates its own reliability observations from there.
  QENS_ASSIGN_OR_RETURN(std::vector<selection::NodeProfile> profiles,
                        fleet->environment.Profiles());
  Leader leader(std::move(profiles), fopts.ranking, fopts.query_driven,
                fleet->ranking_index, fleet->fleet_epoch);

  std::unique_ptr<sim::Network> own_network;
  sim::Network* network = shared_network;
  if (network == nullptr) {
    own_network = std::make_unique<sim::Network>(
        sim::CostModel(fopts.environment.cost), options.network);
    network = own_network.get();
  }

  QuerySession session(std::move(fleet), options.session_id,
                       options.seed.value_or(fopts.seed), std::move(leader),
                       std::move(own_network), network);

  if (fopts.fault_tolerance.enabled) {
    if (fopts.fault_tolerance.max_send_attempts == 0) {
      return Status::InvalidArgument(
          "federation: max_send_attempts must be >= 1");
    }
    if (fopts.fault_tolerance.min_quorum_frac < 0.0 ||
        fopts.fault_tolerance.min_quorum_frac > 1.0) {
      return Status::InvalidArgument(
          "federation: min_quorum_frac must be in [0, 1]");
    }
    QENS_ASSIGN_OR_RETURN(
        sim::FaultPlan plan,
        sim::FaultPlan::Create(num_nodes, fopts.fault_tolerance.faults));
    session.fault_injector_.emplace(std::move(plan));
  }
  if (fopts.byzantine.enabled) {
    const ByzantineOptions& byz = fopts.byzantine;
    switch (byz.aggregator) {
      case AggregationKind::kFedAvgParameters:
      case AggregationKind::kCoordinateMedian:
      case AggregationKind::kTrimmedMean:
      case AggregationKind::kNormClippedFedAvg:
        break;
      default:
        return Status::InvalidArgument(
            StrFormat("federation: byzantine aggregator must be "
                      "parameter-space, got %s",
                      AggregationKindName(byz.aggregator)));
    }
    if (!(byz.trim_beta >= 0.0) || byz.trim_beta >= 0.5) {
      return Status::InvalidArgument(
          "federation: byzantine trim_beta must be in [0, 0.5)");
    }
    if (byz.aggregator == AggregationKind::kNormClippedFedAvg &&
        byz.clip_norm <= 0.0) {
      return Status::InvalidArgument(
          "federation: byzantine clip_norm must be > 0");
    }
    QENS_ASSIGN_OR_RETURN(UpdateValidator validator,
                          UpdateValidator::Create(byz.validator));
    session.validator_.emplace(std::move(validator));
    session.quarantine_until_.assign(num_nodes, 0);
  }
  if (fopts.dynamic.enabled) {
    QENS_ASSIGN_OR_RETURN(DynamicFleet dynamic,
                          DynamicFleet::Create(session.fleet_));
    session.dynamic_.emplace(std::move(dynamic));
  }
  return session;
}

Result<std::vector<size_t>> QuerySession::ChooseNodes(
    const query::RangeQuery& query, selection::PolicyKind policy,
    QueryOutcome* outcome) {
  const sim::EdgeEnvironment& environment = fleet_->environment;
  const FederationOptions& options = fleet_->options;
  const size_t n = environment.num_nodes();
  switch (policy) {
    case selection::PolicyKind::kQueryDriven: {
      QENS_ASSIGN_OR_RETURN(SelectionDecision decision,
                            leader_.Decide(query));
      outcome->selected_rankings = decision.SelectedRankings();
      return decision.SelectedNodeIds();
    }
    case selection::PolicyKind::kRandom: {
      // A fresh stream per query keeps random draws independent across the
      // workload but reproducible for the session seed.
      Rng rng = Rng(seed_ ^ 0x5eed).Fork(++random_stream_);
      const size_t l = std::min(options.random_l, n);
      return selection::SelectRandom(n, std::max<size_t>(1, l), &rng);
    }
    case selection::PolicyKind::kAllNodes:
      return selection::SelectAllNodes(n);
    case selection::PolicyKind::kDataCentric: {
      // Query-agnostic device scoring [8]: data volume/diversity, compute,
      // and link quality — note the query never enters the decision.
      std::vector<selection::NodeProfile> profiles;
      std::vector<double> capacities, latencies;
      for (size_t i = 0; i < n; ++i) {
        QENS_ASSIGN_OR_RETURN(const selection::NodeProfile* p,
                              environment.node(i).profile());
        profiles.push_back(*p);
        capacities.push_back(environment.node(i).capacity());
        latencies.push_back(
            environment.cost_model().options().link_latency_s);
      }
      return selection::SelectDataCentric(profiles, capacities, latencies,
                                          options.data_centric);
    }
    case selection::PolicyKind::kStochastic: {
      // Fair stochastic selection [12]: ranking-weighted draw with a
      // fairness boost; stateful across the session's query stream.
      if (!stochastic_.has_value()) {
        selection::StochasticOptions so = options.stochastic;
        so.seed = seed_ ^ 0xfa12;
        stochastic_.emplace(n, so);
      }
      QENS_ASSIGN_OR_RETURN(std::vector<selection::NodeRank> ranks,
                            leader_.Rank(query));
      return stochastic_->Select(ranks);
    }
    case selection::PolicyKind::kGameTheory: {
      // GT probes with the leader's local (train) data against every node's
      // local data — a full pre-round per query (its defining cost).
      std::vector<data::Dataset> node_sets;
      node_sets.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        node_sets.push_back(environment.node(i).local_data());
      }
      selection::GameTheoryOptions gt = options.game_theory;
      gt.model = options.hyper.kind;
      gt.seed = seed_ + query.id;
      QENS_ASSIGN_OR_RETURN(
          selection::GameTheorySelection sel,
          selection::RunGameTheorySelection(
              environment.node(environment.leader_index()).local_data(),
              node_sets, gt));
      outcome->gt_preround_seconds = sel.pre_round_seconds;
      // The pre-round is leader-side training over its own data; charge it
      // through the cost model as well.
      outcome->sim_time_total += environment.cost_model().TrainingSeconds(
          environment.node(environment.leader_index()).NumSamples(),
          options.hyper.epochs,
          environment.node(environment.leader_index()).capacity());
      return sel.selected;
    }
  }
  return Status::Internal("ChooseNodes: unhandled policy");
}

const std::vector<size_t>& QuerySession::StochasticParticipation() {
  if (!stochastic_.has_value()) {
    selection::StochasticOptions so = fleet_->options.stochastic;
    so.seed = seed_ ^ 0xfa12;
    stochastic_.emplace(fleet_->environment.num_nodes(), so);
  }
  return stochastic_->participation_counts();
}

Result<QueryOutcome> QuerySession::RunQuery(const query::RangeQuery& query,
                                            selection::PolicyKind policy,
                                            bool data_selectivity) {
  return RunQueryMultiRound(query, policy, data_selectivity, /*rounds=*/1);
}

Result<QueryOutcome> QuerySession::RunQueryMultiRound(
    const query::RangeQuery& query, selection::PolicyKind policy,
    bool data_selectivity, size_t rounds) {
  if (rounds == 0) {
    return Status::InvalidArgument("RunQueryMultiRound: rounds must be > 0");
  }
  obs::TraceSpan query_span("federation.query");
  obs::Count("federation.queries");
  Stopwatch watch;
  // Snapshot the leader's ranking telemetry so this query's deltas can be
  // attached to its first RoundRecord after the rounds run.
  const bool metrics_on = obs::MetricsRegistry::Enabled();
  const Leader::RankingTelemetry rank_before =
      metrics_on ? leader_.ranking_telemetry() : Leader::RankingTelemetry{};
  const sim::EdgeEnvironment& environment = fleet_->environment;
  const FederationOptions& options = fleet_->options;
  QueryOutcome outcome;
  outcome.query = query;
  outcome.policy = policy;
  outcome.data_selectivity = data_selectivity;
  outcome.rounds = rounds;
  outcome.samples_all_nodes = environment.TotalSamples();

  // All internal work (ranking, matching, training) happens in the
  // fleet's internal (normalized) space.
  QENS_ASSIGN_OR_RETURN(query::RangeQuery internal,
                        fleet_->InternalQuery(query));

  // Ground truth: pooled held-out rows inside the query region. Under the
  // dynamic layer the held-out rows drift with their devices, so the query
  // is answered against the fleet's current reality.
  Result<data::Dataset> test = dynamic_.has_value()
                                   ? dynamic_->QueryRegionTestData(query)
                                   : fleet_->QueryRegionTestData(query);
  if (!test.ok()) {
    obs::Count("federation.queries.skipped");
    outcome.skipped = true;
    outcome.wall_seconds = watch.ElapsedSeconds();
    return outcome;
  }
  outcome.test_rows = test->NumSamples();

  QENS_ASSIGN_OR_RETURN(std::vector<size_t> chosen,
                        ChooseNodes(internal, policy, &outcome));

  // Volatile clients: selected nodes may be offline for this query.
  if (options.dropout_rate > 0.0) {
    if (options.dropout_rate > 1.0) {
      return Status::InvalidArgument("dropout_rate must be in [0, 1]");
    }
    Rng drop_rng = Rng(seed_ ^ 0xd20f).Fork(++dropout_stream_);
    std::vector<size_t> alive;
    for (size_t id : chosen) {
      if (drop_rng.Bernoulli(options.dropout_rate)) {
        outcome.dropped_nodes.push_back(id);
      } else {
        alive.push_back(id);
      }
    }
    chosen = std::move(alive);
  }
  if (chosen.empty()) {
    obs::Count("federation.queries.skipped");
    outcome.skipped = true;
    outcome.wall_seconds = watch.ElapsedSeconds();
    return outcome;
  }

  // Rankings for selectivity: the query-driven policy computed them in
  // ChooseNodes; for baselines with selectivity requested we still need
  // per-node supporting clusters, so rank on demand.
  std::vector<selection::NodeRank> all_ranks;
  if (data_selectivity) {
    QENS_ASSIGN_OR_RETURN(all_ranks, leader_.Rank(internal));
  }
  auto rank_of_node = [&](size_t node_id) -> const selection::NodeRank* {
    for (const auto& r : all_ranks) {
      if (r.node_id == node_id) return &r;
    }
    return nullptr;
  };

  // Broadcast the initial global model w.
  Rng init_rng(ModelInitSeed(seed_, query.id, options.strong_seed_mix));
  QENS_ASSIGN_OR_RETURN(
      ml::SequentialModel global,
      ml::BuildModel(options.hyper,
                     environment.node(0).local_data().NumFeatures(),
                     &init_rng));
  // Down-link price per broadcast. Under the binary codec the size is
  // closed-form from the architecture, so one number is EXACT for every
  // round — which also fixes the historical down/up asymmetry (the text
  // down-link reused the initial model's size across rounds while the
  // up-link remeasured each trained model's drifting hex-float length).
  const ml::WireOptions& wire = options.wire;
  const size_t model_bytes =
      wire.enabled ? ml::EncodedModelBytes(global, ml::DownlinkKind(wire),
                                           wire.top_k_fraction)
                   : ml::SerializedModelBytes(global);

  LocalTrainOptions local_options;
  local_options.hyper = options.hyper;
  local_options.epochs_per_cluster = options.epochs_per_cluster;
  local_options.seed = seed_ + query.id;

  // Assemble the per-node training jobs once (node id, Eq. 7 weight, and
  // the supporting-cluster set under data selectivity).
  std::vector<TrainJob> jobs;
  for (size_t node_id : chosen) {
    TrainJob job{node_id, 1.0, data_selectivity, {}};
    if (data_selectivity) {
      const selection::NodeRank* rank = rank_of_node(node_id);
      if (rank == nullptr || rank->supporting_clusters == 0) {
        // Nothing in this node matches the query; it contributes no model.
        continue;
      }
      job.rank_weight = rank->ranking;
      job.supporting = rank->SupportingClusterIds();
    }
    jobs.push_back(std::move(job));
  }
  if (jobs.empty()) {
    // No selected node can contribute a model (e.g. nothing supports the
    // query under selectivity): the query is unanswerable, faults or not.
    obs::Count("federation.queries.skipped");
    outcome.skipped = true;
    outcome.wall_seconds = watch.ElapsedSeconds();
    return outcome;
  }

  // Drive the rounds through the shared engine.
  RoundEngineContext ctx;
  ctx.environment = &environment;
  ctx.transport = transport_.get();
  ctx.leader = &leader_;
  ctx.options = &options;
  ctx.injector = fault_injector_.has_value() ? &*fault_injector_ : nullptr;
  ctx.fault_round = &fault_round_;
  ctx.validator = validator_.has_value() ? &*validator_ : nullptr;
  ctx.quarantine_until = &quarantine_until_;
  ctx.byz_round = &byz_round_;
  ctx.pool = &pool_;
  ctx.session_id = session_id_;
  ctx.dynamic = dynamic_.has_value() ? &*dynamic_ : nullptr;
  RoundEngine engine(ctx);
  QENS_ASSIGN_OR_RETURN(
      RoundEngine::RoundSetResult rr,
      engine.Run(jobs, std::move(global), rounds, query.id, policy,
                 local_options, model_bytes, &test.value(), &outcome));

  std::vector<ml::SequentialModel> local_models = std::move(rr.local_models);
  std::vector<double> eq7_weights = std::move(rr.eq7_weights);
  const ml::SequentialModel& last_global = rr.global;
  const ByzantineOptions& byz = options.byzantine;
  const bool byz_on = byz.enabled;

  if (local_models.empty()) {
    outcome.skipped = true;
    outcome.wall_seconds = watch.ElapsedSeconds();
    return outcome;
  }
  outcome.selected_nodes = chosen;

  // Eq. 7 weights: rankings when ranked selection produced them; otherwise
  // (Random/All/GT) weighted averaging degenerates to Eq. 6. A degenerate
  // all-zero ranking vector also falls back to equal weights.
  double weight_sum = 0.0;
  for (double w : eq7_weights) weight_sum += w;
  if (weight_sum <= 0.0) {
    std::fill(eq7_weights.begin(), eq7_weights.end(), 1.0);
  }

  QENS_ASSIGN_OR_RETURN(
      EnsembleModel ensemble,
      EnsembleModel::Create(std::move(local_models), eq7_weights));

  const Matrix& x_test = test->features();
  const Matrix& y_test = test->targets();
  QENS_ASSIGN_OR_RETURN(Matrix pred_avg,
                        ensemble.Predict(x_test,
                                         AggregationKind::kModelAveraging));
  QENS_ASSIGN_OR_RETURN(
      outcome.loss_model_avg,
      ml::ComputeLoss(ml::LossKind::kMse, pred_avg, y_test));
  QENS_ASSIGN_OR_RETURN(
      Matrix pred_weighted,
      ensemble.Predict(x_test, AggregationKind::kWeightedAveraging));
  QENS_ASSIGN_OR_RETURN(
      outcome.loss_weighted,
      ml::ComputeLoss(ml::LossKind::kMse, pred_weighted, y_test));
  QENS_ASSIGN_OR_RETURN(
      Matrix pred_fedavg,
      ensemble.Predict(x_test, AggregationKind::kFedAvgParameters));
  QENS_ASSIGN_OR_RETURN(
      outcome.loss_fedavg,
      ml::ComputeLoss(ml::LossKind::kMse, pred_fedavg, y_test));

  if (byz_on) {
    // Robust final answer under the configured aggregator, against the
    // last committed global model as the clipping reference.
    RobustAggregationOptions robust;
    robust.trim_beta = byz.trim_beta;
    robust.clip_norm = byz.clip_norm;
    robust.reference = &last_global;
    QENS_ASSIGN_OR_RETURN(Matrix pred_robust,
                          ensemble.Predict(x_test, byz.aggregator, robust));
    QENS_ASSIGN_OR_RETURN(
        outcome.loss_robust,
        ml::ComputeLoss(ml::LossKind::kMse, pred_robust, y_test));
    outcome.has_loss_robust = true;
  }

  // Report losses in raw target units, comparable to the paper's numbers.
  outcome.loss_model_avg = fleet_->DenormalizeMse(outcome.loss_model_avg);
  outcome.loss_weighted = fleet_->DenormalizeMse(outcome.loss_weighted);
  outcome.loss_fedavg = fleet_->DenormalizeMse(outcome.loss_fedavg);
  if (outcome.has_loss_robust) {
    outcome.loss_robust = fleet_->DenormalizeMse(outcome.loss_robust);
  }

  if (!outcome.round_records.empty()) {
    // The final record carries the evaluated answer quality (Eq. 7 loss).
    outcome.round_records.back().has_loss = true;
    outcome.round_records.back().loss = outcome.loss_weighted;
  }
  if (metrics_on && !outcome.round_records.empty()) {
    // Ranking happens before round 0, so the query's accelerator counters
    // ride on its first record (zero — and omitted from exports — when
    // the index and cache are off).
    const Leader::RankingTelemetry& after = leader_.ranking_telemetry();
    obs::RoundRecord& first = outcome.round_records.front();
    first.rank_index_rankings =
        after.index_rankings - rank_before.index_rankings;
    first.rank_cache_hits = after.cache_hits - rank_before.cache_hits;
    first.rank_cache_misses = after.cache_misses - rank_before.cache_misses;
    first.rank_candidate_nodes =
        after.candidate_nodes - rank_before.candidate_nodes;
  }

  outcome.wall_seconds = watch.ElapsedSeconds();
  return outcome;
}

}  // namespace qens::fl
