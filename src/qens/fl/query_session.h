#ifndef QENS_FL_QUERY_SESSION_H_
#define QENS_FL_QUERY_SESSION_H_

/// \file query_session.h
/// The per-stream query driver of the serving engine.
///
/// A `Fleet` is the immutable part of a deployment: the environment (nodes,
/// train shards, cost model), the held-out test shards, the configuration,
/// and the normalization constants. It is built once and then shared
/// read-only by any number of sessions.
///
/// A `QuerySession` is one independent query stream over that fleet. It
/// owns every piece of mutable state the protocol touches — the leader's
/// reliability bookkeeping, the RNG streams (random policy, dropout,
/// stochastic selection), the fault injector, the Byzantine quarantine
/// ledger, the training pool, and the Transport its traffic is accounted
/// through — so two sessions never share mutable state and can run
/// concurrently while each stays bit-identical to running alone.
///
/// Seed contract: all per-query randomness derives from the session seed
/// exactly as the historical Federation derived it from
/// `FederationOptions::seed` (model init `fl::ModelInitSeed(seed, query.id)`
/// — the historical `seed * 1000003 + query.id` map, see seed_derivation.h,
/// local training `seed + query.id`, Random policy
/// `Rng(seed ^ 0x5eed).Fork(stream)`, dropout `Rng(seed ^ 0xd20f)`,
/// stochastic `seed ^ 0xfa12`, GT `seed + query.id`). A session seeded
/// with `FederationOptions::seed` therefore reproduces the sequential
/// Federation byte-for-byte.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "qens/common/status.h"
#include "qens/common/thread_pool.h"
#include "qens/data/dataset.h"
#include "qens/data/normalizer.h"
#include "qens/fl/dynamic_fleet.h"
#include "qens/fl/leader.h"
#include "qens/fl/protocol.h"
#include "qens/fl/transport.h"

namespace qens::fl {

/// The immutable, shareable part of a deployment. Built once by
/// Fleet::Create; sessions hold it through shared_ptr<const Fleet> and
/// never mutate it (the environment-owned network is mutated only by the
/// sequential Federation facade, which owns the fleet non-const).
struct Fleet {
  sim::EdgeEnvironment environment;
  std::vector<data::Dataset> test_shards;  ///< By node id, internal units.
  FederationOptions options;
  query::HyperRectangle raw_space;  ///< Raw-unit global data space.
  std::optional<data::Normalizer> feature_norm;
  std::optional<data::Normalizer> target_norm;
  /// Shared cluster-rectangle spatial index over the published profiles
  /// (docs/INDEXING.md); built iff options.ranking.use_index, else null.
  /// Immutable, shared read-only by every session's leader; each session
  /// keeps its own scratch and ranking cache.
  std::shared_ptr<const selection::ClusterIndex> ranking_index;
  /// Base fleet-state version. Each session's leader starts its epoch
  /// here; online cluster refresh advances the leader's copy (the shared
  /// Fleet itself never changes — see fl/dynamic_fleet.h).
  uint64_t fleet_epoch = 0;

  /// Split every node's dataset into train/test, normalize when configured,
  /// and build the environment on the train shards. Fails on empty input or
  /// a test_fraction outside (0, 1).
  static Result<std::shared_ptr<Fleet>> Create(
      std::vector<data::Dataset> node_data, const FederationOptions& options);

  /// Map a raw-unit query into the fleet's internal (possibly normalized)
  /// feature space. Identity when normalization is off.
  Result<query::RangeQuery> InternalQuery(const query::RangeQuery& query) const;

  /// Convert an internal-space MSE back to raw target units (identity when
  /// normalization is off or the target range is degenerate).
  double DenormalizeMse(double mse) const;

  /// Pooled test rows (across all nodes) inside the query region. The query
  /// is in raw units; the returned dataset is in internal units.
  Result<data::Dataset> QueryRegionTestData(
      const query::RangeQuery& query) const;
};

/// Session construction knobs.
struct QuerySessionOptions {
  /// Tags this session's RoundRecords; 0 is the sequential Federation API.
  uint64_t session_id = 0;
  /// Seed all the session's RNG streams derive from. Unset = the fleet's
  /// FederationOptions::seed (the historical sequential behavior).
  std::optional<uint64_t> seed;
  /// Accounting options for the session-private network (ignored when a
  /// shared network is supplied).
  sim::NetworkOptions network;
};

/// One independent query stream over a shared fleet.
class QuerySession {
 public:
  /// Build a session over `fleet`. With `shared_network == nullptr` the
  /// session accounts its traffic in a private sim::Network (isolated
  /// counters, zeroed at creation); otherwise it sends through the supplied
  /// network, which must outlive the session (the Federation facade passes
  /// the environment-owned network so historical counters keep working).
  /// Validates the fault-tolerance and Byzantine options.
  static Result<QuerySession> Create(std::shared_ptr<const Fleet> fleet,
                                     const QuerySessionOptions& options,
                                     sim::Network* shared_network = nullptr);

  /// Execute one query under `policy`. See Federation::RunQuery.
  Result<QueryOutcome> RunQuery(const query::RangeQuery& query,
                                selection::PolicyKind policy,
                                bool data_selectivity);

  /// Multi-round extension; rounds == 1 is the paper's protocol. See
  /// Federation::RunQueryMultiRound.
  Result<QueryOutcome> RunQueryMultiRound(const query::RangeQuery& query,
                                          selection::PolicyKind policy,
                                          bool data_selectivity,
                                          size_t rounds);

  /// Per-node participation counts accumulated by the stochastic policy.
  const std::vector<size_t>& StochasticParticipation();

  uint64_t session_id() const { return session_id_; }
  uint64_t seed() const { return seed_; }
  const Fleet& fleet() const { return *fleet_; }
  const Leader& leader() const { return leader_; }

  /// The channel this session's traffic goes through.
  const Transport& transport() const { return *transport_; }

  /// The session-private network, or nullptr when sending through a shared
  /// one.
  const sim::Network* own_network() const { return own_network_.get(); }

  /// The active fault injector, or nullptr when fault tolerance is off.
  const sim::FaultInjector* fault_injector() const {
    return fault_injector_.has_value() ? &*fault_injector_ : nullptr;
  }

  /// The session's dynamic-fleet state (churn/drift/refresh), or nullptr
  /// when FederationOptions::dynamic is off.
  const DynamicFleet* dynamic_fleet() const {
    return dynamic_.has_value() ? &*dynamic_ : nullptr;
  }

  /// Global round counter the fault schedule is evaluated against (advances
  /// once per executed round when fault tolerance is on, so crashes persist
  /// across the session's queries).
  size_t fault_round() const { return fault_round_; }

 private:
  QuerySession(std::shared_ptr<const Fleet> fleet, uint64_t session_id,
               uint64_t seed, Leader leader,
               std::unique_ptr<sim::Network> own_network,
               sim::Network* network)
      : fleet_(std::move(fleet)),
        session_id_(session_id),
        seed_(seed),
        leader_(std::move(leader)),
        own_network_(std::move(own_network)),
        transport_(std::make_unique<InProcessTransport>(network)) {}

  /// Per-policy node choice; fills rankings for ranked policies. The query
  /// must already be in internal units.
  Result<std::vector<size_t>> ChooseNodes(const query::RangeQuery& query,
                                          selection::PolicyKind policy,
                                          QueryOutcome* outcome);

  std::shared_ptr<const Fleet> fleet_;
  uint64_t session_id_ = 0;
  uint64_t seed_ = 0;
  Leader leader_;  ///< Session-local ranking + reliability state.
  std::unique_ptr<sim::Network> own_network_;  ///< Null when shared.
  std::unique_ptr<InProcessTransport> transport_;
  uint64_t random_stream_ = 0;   ///< Advances per Random-policy query.
  uint64_t dropout_stream_ = 0;  ///< Advances per query with dropout on.
  std::optional<selection::StochasticSelector> stochastic_;  ///< Lazy.
  std::optional<sim::FaultInjector> fault_injector_;  ///< When enabled.
  size_t fault_round_ = 0;  ///< Rounds executed under fault injection.
  std::optional<DynamicFleet> dynamic_;  ///< When dynamic.enabled.
  std::optional<UpdateValidator> validator_;  ///< When byzantine.enabled.
  /// Shared worker pool for parallel local training; created lazily on the
  /// first parallel round, then reused across rounds and queries.
  std::unique_ptr<common::ThreadPool> pool_;
  /// Per node: first byzantine round index the node may rejoin (quarantine
  /// expiry). Sized num_nodes when byzantine.enabled, else empty.
  std::vector<size_t> quarantine_until_;
  size_t byz_round_ = 0;  ///< Rounds executed under the byzantine layer.
};

}  // namespace qens::fl

#endif  // QENS_FL_QUERY_SESSION_H_
