#include "qens/fl/leader.h"

#include "qens/obs/metrics.h"
#include "qens/obs/trace.h"

namespace qens::fl {

std::vector<double> SelectionDecision::SelectedRankings() const {
  std::vector<double> out;
  out.reserve(selected.size());
  for (const auto& r : selected) out.push_back(r.ranking);
  return out;
}

std::vector<size_t> SelectionDecision::SelectedNodeIds() const {
  std::vector<size_t> out;
  out.reserve(selected.size());
  for (const auto& r : selected) out.push_back(r.node_id);
  return out;
}

Result<std::vector<selection::NodeRank>> Leader::Rank(
    const query::RangeQuery& query) const {
  obs::TraceSpan span("leader.rank");
  obs::Count("leader.rankings");
  return selection::RankNodes(profiles_, query, ranking_options_);
}

Result<SelectionDecision> Leader::Decide(
    const query::RangeQuery& query) const {
  obs::TraceSpan span("leader.decide");
  SelectionDecision decision;
  QENS_ASSIGN_OR_RETURN(decision.all_ranks, Rank(query));
  QENS_ASSIGN_OR_RETURN(
      decision.selected,
      selection::SelectQueryDriven(decision.all_ranks, selection_options_));
  obs::Count("leader.decisions");
  obs::Count("leader.nodes_selected", decision.selected.size());
  return decision;
}

void Leader::RecordRoundResult(size_t node_id, RoundResult result) {
  for (auto& profile : profiles_) {
    if (profile.node_id != node_id) continue;
    switch (result) {
      case RoundResult::kCompleted:
        profile.reliability.RecordCompleted();
        break;
      case RoundResult::kFailed:
        profile.reliability.RecordFailure();
        break;
      case RoundResult::kMissedDeadline:
        profile.reliability.RecordDeadlineMiss();
        break;
      case RoundResult::kRejected:
        profile.reliability.RecordRejected();
        break;
    }
    return;
  }
}

}  // namespace qens::fl
