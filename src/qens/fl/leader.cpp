#include "qens/fl/leader.h"

#include "qens/common/string_util.h"
#include "qens/obs/metrics.h"
#include "qens/obs/trace.h"

namespace qens::fl {

std::vector<double> SelectionDecision::SelectedRankings() const {
  std::vector<double> out;
  out.reserve(selected.size());
  for (const auto& r : selected) out.push_back(r.ranking);
  return out;
}

std::vector<size_t> SelectionDecision::SelectedNodeIds() const {
  std::vector<size_t> out;
  out.reserve(selected.size());
  for (const auto& r : selected) out.push_back(r.node_id);
  return out;
}

Result<std::vector<selection::NodeRank>> Leader::Rank(
    const query::RangeQuery& query) const {
  obs::TraceSpan span("leader.rank");
  obs::Count("leader.rankings");
  if (cache_.has_value()) {
    // Bind the cache to the live epoch: a refresh changed the geometry
    // every cached ranking was computed over, so those entries are dropped
    // (no-op while the epoch is unchanged).
    cache_->SetEpoch(fleet_epoch_);
    if (const std::vector<selection::NodeRank>* hit =
            cache_->Lookup(query.region)) {
      ++telemetry_.cache_hits;
      obs::Count("leader.rank_cache_hits");
      return *hit;
    }
    ++telemetry_.cache_misses;
    obs::Count("leader.rank_cache_misses");
  }
  Result<std::vector<selection::NodeRank>> ranks = [&] {
    // The index is consulted only while its epoch matches the live fleet
    // state — an index built over pre-refresh geometry would silently rank
    // the old boxes. PublishRefreshedProfile rebuilds it in lockstep, so a
    // mismatch (only possible with a hand-wired stale index) falls back to
    // the always-correct scan.
    if (ranking_options_.use_index && index_ != nullptr &&
        index_->epoch() == fleet_epoch_) {
      selection::IndexQueryStats stats;
      auto r = selection::RankNodesIndexed(*index_, profiles_, query,
                                           ranking_options_, &scratch_,
                                           &stats);
      if (r.ok()) {
        ++telemetry_.index_rankings;
        telemetry_.candidate_nodes += stats.candidate_nodes;
        telemetry_.pruned_clusters += stats.pruned_clusters;
        obs::Count("leader.rank_index_rankings");
      }
      return r;
    }
    auto r = selection::RankNodes(profiles_, query, ranking_options_);
    if (r.ok()) ++telemetry_.scan_rankings;
    return r;
  }();
  if (!ranks.ok()) return ranks;
  if (cache_.has_value()) {
    // Failed rankings are never cached; successful ones are cached by the
    // exact query rectangle (copy in, original returned).
    cache_->Insert(query.region, *ranks);
    telemetry_.cache_evictions = cache_->stats().evictions;
  }
  return ranks;
}

Result<SelectionDecision> Leader::Decide(
    const query::RangeQuery& query) const {
  obs::TraceSpan span("leader.decide");
  SelectionDecision decision;
  QENS_ASSIGN_OR_RETURN(decision.all_ranks, Rank(query));
  QENS_ASSIGN_OR_RETURN(
      decision.selected,
      selection::SelectQueryDriven(decision.all_ranks, selection_options_));
  obs::Count("leader.decisions");
  obs::Count("leader.nodes_selected", decision.selected.size());
  return decision;
}

void Leader::SetStaleRounds(size_t node_id, size_t stale_rounds) {
  for (auto& profile : profiles_) {
    if (profile.node_id != node_id) continue;
    if (profile.stale_rounds == stale_rounds) return;
    profile.stale_rounds = stale_rounds;
    // stale_rounds is part of every NodeRank (and the ranking itself when
    // staleness_weight > 0): cached rankings are now stale.
    if (cache_.has_value()) cache_->Clear();
    return;
  }
}

Status Leader::PublishRefreshedProfile(const selection::NodeProfile& fresh) {
  for (auto& profile : profiles_) {
    if (profile.node_id != fresh.node_id) continue;
    profile.clusters = fresh.clusters;
    profile.total_samples = fresh.total_samples;
    profile.stale_rounds = 0;  // The digest matches the data again.
    // Reliability history is the leader's own observation — it survives.
    ++fleet_epoch_;
    if (cache_.has_value()) cache_->SetEpoch(fleet_epoch_);
    if (index_ != nullptr) {
      // Rebuild the session-local index over the updated geometry, stamped
      // with the new epoch so Rank() trusts it again.
      selection::ClusterIndexOptions index_options;
      index_options.bins_per_dim = index_->bins_per_dim();
      index_options.epoch = fleet_epoch_;
      QENS_ASSIGN_OR_RETURN(
          selection::ClusterIndex rebuilt,
          selection::ClusterIndex::Build(profiles_, index_options));
      index_ = std::make_shared<const selection::ClusterIndex>(
          std::move(rebuilt));
    }
    obs::Count("leader.profile_refreshes");
    return Status::OK();
  }
  return Status::NotFound(StrFormat(
      "PublishRefreshedProfile: unknown node id %zu", fresh.node_id));
}

void Leader::RecordRoundResult(size_t node_id, RoundResult result) {
  for (auto& profile : profiles_) {
    if (profile.node_id != node_id) continue;
    // Reliability feeds NodeRank (the record always, the ranking when
    // reliability_weight > 0): any cached ranking is now stale.
    if (cache_.has_value()) cache_->Clear();
    switch (result) {
      case RoundResult::kCompleted:
        profile.reliability.RecordCompleted();
        break;
      case RoundResult::kFailed:
        profile.reliability.RecordFailure();
        break;
      case RoundResult::kMissedDeadline:
        profile.reliability.RecordDeadlineMiss();
        break;
      case RoundResult::kRejected:
        profile.reliability.RecordRejected();
        break;
    }
    return;
  }
}

}  // namespace qens::fl
