#include "qens/fl/leader.h"

#include "qens/obs/metrics.h"
#include "qens/obs/trace.h"

namespace qens::fl {

std::vector<double> SelectionDecision::SelectedRankings() const {
  std::vector<double> out;
  out.reserve(selected.size());
  for (const auto& r : selected) out.push_back(r.ranking);
  return out;
}

std::vector<size_t> SelectionDecision::SelectedNodeIds() const {
  std::vector<size_t> out;
  out.reserve(selected.size());
  for (const auto& r : selected) out.push_back(r.node_id);
  return out;
}

Result<std::vector<selection::NodeRank>> Leader::Rank(
    const query::RangeQuery& query) const {
  obs::TraceSpan span("leader.rank");
  obs::Count("leader.rankings");
  if (cache_.has_value()) {
    if (const std::vector<selection::NodeRank>* hit =
            cache_->Lookup(query.region)) {
      ++telemetry_.cache_hits;
      obs::Count("leader.rank_cache_hits");
      return *hit;
    }
    ++telemetry_.cache_misses;
    obs::Count("leader.rank_cache_misses");
  }
  Result<std::vector<selection::NodeRank>> ranks = [&] {
    if (ranking_options_.use_index && index_ != nullptr) {
      selection::IndexQueryStats stats;
      auto r = selection::RankNodesIndexed(*index_, profiles_, query,
                                           ranking_options_, &scratch_,
                                           &stats);
      if (r.ok()) {
        ++telemetry_.index_rankings;
        telemetry_.candidate_nodes += stats.candidate_nodes;
        telemetry_.pruned_clusters += stats.pruned_clusters;
        obs::Count("leader.rank_index_rankings");
      }
      return r;
    }
    auto r = selection::RankNodes(profiles_, query, ranking_options_);
    if (r.ok()) ++telemetry_.scan_rankings;
    return r;
  }();
  if (!ranks.ok()) return ranks;
  if (cache_.has_value()) {
    // Failed rankings are never cached; successful ones are cached by the
    // exact query rectangle (copy in, original returned).
    cache_->Insert(query.region, *ranks);
    telemetry_.cache_evictions = cache_->stats().evictions;
  }
  return ranks;
}

Result<SelectionDecision> Leader::Decide(
    const query::RangeQuery& query) const {
  obs::TraceSpan span("leader.decide");
  SelectionDecision decision;
  QENS_ASSIGN_OR_RETURN(decision.all_ranks, Rank(query));
  QENS_ASSIGN_OR_RETURN(
      decision.selected,
      selection::SelectQueryDriven(decision.all_ranks, selection_options_));
  obs::Count("leader.decisions");
  obs::Count("leader.nodes_selected", decision.selected.size());
  return decision;
}

void Leader::RecordRoundResult(size_t node_id, RoundResult result) {
  for (auto& profile : profiles_) {
    if (profile.node_id != node_id) continue;
    // Reliability feeds NodeRank (the record always, the ranking when
    // reliability_weight > 0): any cached ranking is now stale.
    if (cache_.has_value()) cache_->Clear();
    switch (result) {
      case RoundResult::kCompleted:
        profile.reliability.RecordCompleted();
        break;
      case RoundResult::kFailed:
        profile.reliability.RecordFailure();
        break;
      case RoundResult::kMissedDeadline:
        profile.reliability.RecordDeadlineMiss();
        break;
      case RoundResult::kRejected:
        profile.reliability.RecordRejected();
        break;
    }
    return;
  }
}

}  // namespace qens::fl
