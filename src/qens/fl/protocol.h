#ifndef QENS_FL_PROTOCOL_H_
#define QENS_FL_PROTOCOL_H_

/// \file protocol.h
/// Shared types of the per-query federated protocol: the configuration
/// every layer reads (FederationOptions and its opt-in fault-tolerance /
/// Byzantine sub-policies), the per-node training assignment entering a
/// round (TrainJob), and everything recorded about one query execution
/// (QueryOutcome). Splitting these out of the Federation facade lets the
/// Transport / RoundEngine / QuerySession / QueryServer layers share them
/// without include cycles — see docs/ARCHITECTURE.md.

#include <cstdint>
#include <vector>

#include "qens/fl/aggregation.h"
#include "qens/fl/update_validator.h"
#include "qens/ml/model_codec.h"
#include "qens/ml/model_factory.h"
#include "qens/obs/round_record.h"
#include "qens/query/range_query.h"
#include "qens/selection/data_centric.h"
#include "qens/selection/game_theory.h"
#include "qens/selection/policies.h"
#include "qens/selection/ranking.h"
#include "qens/selection/stochastic.h"
#include "qens/sim/churn.h"
#include "qens/sim/edge_environment.h"
#include "qens/sim/fault_injection.h"

namespace qens::fl {

/// Fault-tolerance policy for the federated loop. Strictly opt-in: with
/// `enabled == false` the loop reproduces the fault-free protocol
/// bit-for-bit (no injector is constructed and no extra RNG draws occur).
struct FaultToleranceOptions {
  bool enabled = false;
  /// The seeded fault schedule applied to the simulated environment.
  sim::FaultPlanOptions faults;
  /// Per-round deadline in simulated seconds covering one participant's
  /// model-down transfer + (slowed) local training + model-up transfer.
  /// Participants that exceed it are excluded from the round. 0 disables.
  double round_deadline_s = 0.0;
  /// Total transmissions attempted per message (1 = no retries).
  size_t max_send_attempts = 3;
  /// Extra simulated wait added after each lost transmission before the
  /// retry goes out.
  double retry_backoff_s = 0.005;
  /// Minimum fraction of the engaged participants that must return a model
  /// for the round to commit; below it the round degrades gracefully to
  /// the previous global model.
  double min_quorum_frac = 0.5;
};

/// Byzantine-robustness policy (opt-in). Strictly additive: with
/// `enabled == false` no validator is built, no quarantine state is kept,
/// and the round flow is byte-identical to the pre-robustness protocol.
struct ByzantineOptions {
  bool enabled = false;
  /// Leader-side screening of returned updates (finite / norm / holdout).
  UpdateValidatorOptions validator;
  /// Rounds a node sits out after a rejected update (0 = reject only,
  /// never quarantine). Repeat offenders are re-quarantined on return.
  size_t quarantine_rounds = 0;
  /// Aggregator for the inter-round merge and the robust final answer.
  /// Must be parameter-space: kFedAvgParameters, kCoordinateMedian,
  /// kTrimmedMean, or kNormClippedFedAvg.
  AggregationKind aggregator = AggregationKind::kFedAvgParameters;
  /// kTrimmedMean trim fraction, in [0, 0.5).
  double trim_beta = 0.1;
  /// kNormClippedFedAvg L2 bound on (w_i - w_round), > 0.
  double clip_norm = 1.0;
};

/// Seeded per-round data drift applied to node copies inside a session
/// (see fl/dynamic_fleet.h). A drift event adds a constant per-dimension
/// feature offset to the node's local data, pulling it away from the
/// cluster digest the node last published.
struct DriftInjectionOptions {
  /// Per-node per-round probability of a drift event.
  double rate = 0.0;
  /// Magnitude of each per-dimension offset, as a fraction of that
  /// dimension's global feature span (drawn uniformly in ±this).
  double feature_shift = 0.05;
  uint64_t seed = 0;
};

/// Dynamic-fleet policy (opt-in). Strictly additive: with `enabled ==
/// false` no churn plan is drawn, no node copies are made, and the round
/// flow is byte-identical to the static-fleet protocol.
struct DynamicFleetOptions {
  bool enabled = false;
  /// Seeded join/leave/rejoin schedule (sim/churn.h).
  sim::ChurnPlanOptions churn;
  /// Seeded local data drift (dynamic_fleet.h).
  DriftInjectionOptions drift;
  /// Online cluster refresh: a present node whose accumulated drift
  /// exceeds refresh_threshold re-runs k-means on its current data and
  /// publishes new cluster summaries (bumping the session's fleet epoch).
  bool refresh = false;
  /// Detector threshold: max per-dimension |unpublished offset| / span.
  double refresh_threshold = 0.1;
};

/// Federation-wide configuration.
struct FederationOptions {
  sim::EnvironmentOptions environment;
  selection::RankingOptions ranking;
  selection::QueryDrivenOptions query_driven;
  selection::GameTheoryOptions game_theory;
  selection::DataCentricOptions data_centric;
  selection::StochasticOptions stochastic;
  ml::HyperParams hyper = ml::PaperHyperParams(ml::ModelKind::kLinearRegression);
  /// Local epochs per supporting cluster (the paper's E).
  size_t epochs_per_cluster = 20;
  /// Number of nodes the Random baseline draws (paper's l). Clamped to N.
  size_t random_l = 3;
  /// Fraction of each node's data held out for leader-side evaluation.
  double test_fraction = 0.2;
  /// Leader-coordinated min-max normalization of features and targets
  /// before training. The scaling constants are exactly the per-dimension
  /// global min/max, which the leader already learns from the shipped
  /// cluster boundaries (plus one target-range pair per node) — so this
  /// costs O(1) extra communication and no raw-data exposure. Required in
  /// practice: Table III's learning rates (0.03 for LR) diverge on raw
  /// PM2.5-scale targets. Reported losses are mapped back to raw target
  /// units so they remain comparable with the paper's numbers.
  bool normalize = true;
  /// Volatile clients ([12]): probability that a selected node is offline
  /// for a given query and silently contributes no model. 0 disables.
  double dropout_rate = 0.0;
  /// Train the selected participants concurrently on a shared thread pool,
  /// as they would run on real hardware. Outcomes are bit-identical to the
  /// sequential path (per-node seeds; results consumed in submission order
  /// regardless of completion order). The pool is created lazily on the
  /// first parallel round and reused across rounds and queries.
  bool parallel_local_training = false;
  /// Worker threads for parallel local training. 0 = one per hardware
  /// thread. Jobs beyond the bound queue on the pool (oversubscription is
  /// safe and still deterministic). Ignored when parallel_local_training
  /// is false.
  size_t max_parallel_nodes = 0;
  /// Fault injection + deadline/retry/quorum policy (opt-in).
  FaultToleranceOptions fault_tolerance;
  /// Update validation, quarantine, and robust aggregation (opt-in).
  ByzantineOptions byzantine;
  /// Node churn, data drift, online cluster refresh (opt-in).
  DynamicFleetOptions dynamic;
  /// Binary wire format + update compression (opt-in; docs/WIRE_FORMAT.md).
  /// With it off, byte accounting uses the historical text serializer and
  /// all outputs stay byte-identical to the pre-wire protocol.
  ml::WireOptions wire;
  /// Derive per-query model-init seeds through a full 64-bit mixer instead
  /// of the historical `seed * 1000003 + query.id` affine map (which
  /// collides across sessions once ids reach 1000003 — see
  /// fl/seed_derivation.h). Opt-in: the default keeps every historical
  /// output byte-identical.
  bool strong_seed_mix = false;
  uint64_t seed = 17;
};

/// One per-node training assignment entering a round: the node, its Eq. 7
/// weight, and (under data selectivity) the supporting-cluster set it
/// trains on. Built once per query by the session driver; consumed every
/// round by the RoundEngine.
struct TrainJob {
  size_t node_id = 0;
  double rank_weight = 1.0;  ///< Eq. 7 weight (1.0 for unranked policies).
  bool selective = false;    ///< Train on supporting clusters only.
  std::vector<size_t> supporting;  ///< Supporting cluster ids when selective.
};

/// Everything recorded about one query execution.
struct QueryOutcome {
  query::RangeQuery query;
  selection::PolicyKind policy = selection::PolicyKind::kQueryDriven;
  bool data_selectivity = false;  ///< Trained on supporting clusters only.

  std::vector<size_t> selected_nodes;
  std::vector<double> selected_rankings;  ///< Empty for non-ranked policies.

  /// Losses of the aggregated answer on the pooled query-region test rows.
  double loss_model_avg = 0.0;   ///< Eq. 6.
  double loss_weighted = 0.0;    ///< Eq. 7 (falls back to Eq. 6 when no
                                 ///< rankings are available).
  double loss_fedavg = 0.0;      ///< Parameter-averaging extension.
  size_t test_rows = 0;

  /// Data accounting (Fig. 9).
  size_t samples_used = 0;        ///< Rows actually trained on.
  size_t samples_selected = 0;    ///< Total rows held by selected nodes.
  size_t samples_all_nodes = 0;   ///< Total rows across the federation.
  double DataFractionOfSelected() const;
  double DataFractionOfAll() const;

  /// Time accounting (Fig. 8).
  double sim_time_total = 0.0;     ///< Sum of per-node training seconds.
  double sim_time_parallel = 0.0;  ///< Max per-node training seconds.
  double sim_time_comm = 0.0;      ///< Model up/down transfer seconds.
  double wall_seconds = 0.0;       ///< Measured C++ wall time.
  double gt_preround_seconds = 0.0;  ///< GT's mandatory probing cost.

  /// True when the query produced no usable run (no test rows in region or
  /// no trainable node); such outcomes carry no loss numbers.
  bool skipped = false;

  /// Federated rounds executed (1 for the paper's single-round protocol).
  size_t rounds = 1;
  /// Selected nodes that were offline this query (volatile clients).
  std::vector<size_t> dropped_nodes;

  /// \name Fault-tolerance accounting
  /// Populated when FederationOptions::fault_tolerance is enabled
  /// (round_survivors is recorded unconditionally).
  /// @{
  std::vector<size_t> round_survivors;  ///< Models received, per round.
  std::vector<size_t> failed_nodes;     ///< Crashed / offline / all sends lost.
  std::vector<size_t> deadline_missed_nodes;  ///< Excluded as stragglers.
  /// Final-round Eq. 7 weights renormalized over the survivors (one entry
  /// per engaged job; non-survivors hold 0; survivors sum to 1).
  std::vector<double> survivor_weights;
  size_t degraded_rounds = 0;  ///< Below-quorum rounds (kept previous model).
  size_t messages_lost = 0;    ///< Transmissions lost in flight.
  size_t send_retries = 0;     ///< Extra transmissions beyond the first.
  /// @}

  /// \name Byzantine accounting
  /// Populated when FederationOptions::byzantine is enabled.
  /// @{
  std::vector<size_t> rejected_nodes;     ///< Had >= 1 update rejected.
  std::vector<size_t> quarantined_nodes;  ///< Skipped >= 1 round quarantined.
  size_t rejected_updates = 0;    ///< Updates dropped by the validator.
  size_t quarantined_skips = 0;   ///< (node, round) pairs skipped.
  size_t rejected_non_finite = 0;
  size_t rejected_abs_norm = 0;
  size_t rejected_norm_outlier = 0;
  size_t rejected_holdout = 0;
  /// Final answer under ByzantineOptions::aggregator (raw target units).
  bool has_loss_robust = false;
  double loss_robust = 0.0;
  /// @}

  /// \name Dynamic-fleet accounting
  /// Populated when FederationOptions::dynamic is enabled.
  /// @{
  size_t nodes_joined = 0;     ///< (node, round) rejoin events.
  size_t nodes_left = 0;       ///< (node, round) departure events.
  size_t fleet_refreshes = 0;  ///< Cluster refreshes published.
  uint64_t fleet_epoch = 0;    ///< Leader's epoch after the final round.
  /// @}

  /// Per-round telemetry (schema in docs/OBSERVABILITY.md). Populated only
  /// while obs metrics are enabled; always empty otherwise, so the default
  /// path allocates nothing.
  std::vector<obs::RoundRecord> round_records;
};

}  // namespace qens::fl

#endif  // QENS_FL_PROTOCOL_H_
