#include "qens/fl/aggregation.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "qens/common/string_util.h"
#include "qens/tensor/vector_ops.h"

namespace qens::fl {
namespace {

/// NaN-free L2 distance-preserving checks used by the Byzantine guards.
bool AllFinite(const std::vector<double>& values) {
  for (double v : values) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

Status CheckFiniteParameters(const std::vector<ml::SequentialModel>& models,
                             const char* what) {
  for (size_t i = 0; i < models.size(); ++i) {
    if (!AllFinite(models[i].GetParameters())) {
      return Status::InvalidArgument(
          StrFormat("%s: model %zu has non-finite parameters", what, i));
    }
  }
  return Status::OK();
}

Status CheckSameArchitecture(const std::vector<ml::SequentialModel>& models,
                             const char* what) {
  for (size_t i = 1; i < models.size(); ++i) {
    if (!models[i].SameArchitecture(models[0])) {
      return Status::InvalidArgument(StrFormat(
          "%s: model %zu architecture differs from model 0", what, i));
    }
  }
  return Status::OK();
}

}  // namespace

const char* AggregationKindName(AggregationKind kind) {
  switch (kind) {
    case AggregationKind::kModelAveraging:
      return "model-averaging";
    case AggregationKind::kWeightedAveraging:
      return "weighted-averaging";
    case AggregationKind::kFedAvgParameters:
      return "fedavg-parameters";
    case AggregationKind::kCoordinateMedian:
      return "coordinate-median";
    case AggregationKind::kTrimmedMean:
      return "trimmed-mean";
    case AggregationKind::kNormClippedFedAvg:
      return "norm-clipped-fedavg";
  }
  return "unknown";
}

Result<AggregationKind> ParseAggregationKind(const std::string& name) {
  const std::string n = ToLower(Trim(name));
  if (n == "model-averaging" || n == "average" || n == "averaging") {
    return AggregationKind::kModelAveraging;
  }
  if (n == "weighted-averaging" || n == "weighted") {
    return AggregationKind::kWeightedAveraging;
  }
  if (n == "fedavg-parameters" || n == "fedavg") {
    return AggregationKind::kFedAvgParameters;
  }
  if (n == "coordinate-median" || n == "median") {
    return AggregationKind::kCoordinateMedian;
  }
  if (n == "trimmed-mean" || n == "trimmed") {
    return AggregationKind::kTrimmedMean;
  }
  if (n == "norm-clipped-fedavg" || n == "clipped") {
    return AggregationKind::kNormClippedFedAvg;
  }
  return Status::InvalidArgument("unknown aggregation: '" + name + "'");
}

Result<Matrix> AggregatePredictions(
    const std::vector<ml::SequentialModel>& models, const Matrix& x) {
  const std::vector<double> equal(models.size(), 1.0);
  return AggregatePredictionsWeighted(models, equal, x);
}

Result<Matrix> AggregatePredictionsWeighted(
    const std::vector<ml::SequentialModel>& models,
    const std::vector<double>& weights, const Matrix& x) {
  if (models.empty()) {
    return Status::InvalidArgument("aggregate: no models");
  }
  if (weights.size() != models.size()) {
    return Status::InvalidArgument(
        StrFormat("aggregate: %zu weights for %zu models", weights.size(),
                  models.size()));
  }
  QENS_ASSIGN_OR_RETURN(std::vector<double> lambda,
                        vec::NormalizeWeights(weights));

  Matrix acc;
  for (size_t i = 0; i < models.size(); ++i) {
    QENS_ASSIGN_OR_RETURN(Matrix pred, models[i].Predict(x));
    if (!AllFinite(pred.data())) {
      return Status::InvalidArgument(StrFormat(
          "aggregate: model %zu produced non-finite predictions", i));
    }
    if (i == 0) {
      pred.Scale(lambda[i]);
      acc = std::move(pred);
    } else {
      QENS_RETURN_NOT_OK(acc.Axpy(lambda[i], pred));
    }
  }
  return acc;
}

Result<ml::SequentialModel> FedAvgParameters(
    const std::vector<ml::SequentialModel>& models,
    const std::vector<double>& weights) {
  if (models.empty()) return Status::InvalidArgument("fedavg: no models");
  if (weights.size() != models.size()) {
    return Status::InvalidArgument(
        StrFormat("fedavg: %zu weights for %zu models", weights.size(),
                  models.size()));
  }
  QENS_RETURN_NOT_OK(CheckSameArchitecture(models, "fedavg"));
  QENS_RETURN_NOT_OK(CheckFiniteParameters(models, "fedavg"));
  QENS_ASSIGN_OR_RETURN(std::vector<double> lambda,
                        vec::NormalizeWeights(weights));

  std::vector<double> params = models[0].GetParameters();
  for (double& p : params) p *= lambda[0];
  for (size_t i = 1; i < models.size(); ++i) {
    const std::vector<double> pi = models[i].GetParameters();
    vec::AxpyInPlace(&params, lambda[i], pi);
  }
  ml::SequentialModel out = models[0].Clone();
  QENS_RETURN_NOT_OK(out.SetParameters(params));
  return out;
}

namespace {

/// Shared entry checks for the robust parameter aggregators.
Status CheckRobustInput(const std::vector<ml::SequentialModel>& models,
                        const char* what) {
  if (models.empty()) {
    return Status::InvalidArgument(StrFormat("%s: no models", what));
  }
  QENS_RETURN_NOT_OK(CheckSameArchitecture(models, what));
  return CheckFiniteParameters(models, what);
}

/// Median of `column` (sorted in place). Even counts average the two
/// middle values.
double MedianInPlace(std::vector<double>* column) {
  std::sort(column->begin(), column->end());
  const size_t n = column->size();
  return n % 2 == 1 ? (*column)[n / 2]
                    : 0.5 * ((*column)[n / 2 - 1] + (*column)[n / 2]);
}

/// Mean of `column` (sorted in place) after dropping `trim` values from
/// each end. Caller guarantees 2 * trim < column->size().
double TrimmedMeanInPlace(std::vector<double>* column, size_t trim) {
  std::sort(column->begin(), column->end());
  double sum = 0.0;
  for (size_t i = trim; i < column->size() - trim; ++i) sum += (*column)[i];
  return sum / static_cast<double>(column->size() - 2 * trim);
}

Result<size_t> TrimCount(size_t n, double trim_beta, const char* what) {
  if (!(trim_beta >= 0.0) || trim_beta >= 0.5) {
    return Status::InvalidArgument(StrFormat(
        "%s: trim_beta must be in [0, 0.5), got %g", what, trim_beta));
  }
  const size_t trim = static_cast<size_t>(trim_beta * static_cast<double>(n));
  if (2 * trim >= n) {
    return Status::InvalidArgument(
        StrFormat("%s: trimming %zu from each end leaves no values (n=%zu)",
                  what, trim, n));
  }
  return trim;
}

/// Coordinate-wise reduce over the models' flat parameter vectors.
template <typename Reduce>
Result<ml::SequentialModel> ReduceParameters(
    const std::vector<ml::SequentialModel>& models, Reduce reduce) {
  std::vector<std::vector<double>> params;
  params.reserve(models.size());
  for (const auto& m : models) params.push_back(m.GetParameters());
  std::vector<double> merged(params[0].size());
  std::vector<double> column(models.size());
  for (size_t p = 0; p < merged.size(); ++p) {
    for (size_t i = 0; i < models.size(); ++i) column[i] = params[i][p];
    merged[p] = reduce(&column);
  }
  ml::SequentialModel out = models[0].Clone();
  QENS_RETURN_NOT_OK(out.SetParameters(merged));
  return out;
}

/// Per-cell reduce over the models' predictions on `x`.
template <typename Reduce>
Result<Matrix> ReducePredictions(const std::vector<ml::SequentialModel>& models,
                                 const Matrix& x, const char* what,
                                 Reduce reduce) {
  if (models.empty()) {
    return Status::InvalidArgument(StrFormat("%s: no models", what));
  }
  std::vector<Matrix> preds;
  preds.reserve(models.size());
  for (size_t i = 0; i < models.size(); ++i) {
    QENS_ASSIGN_OR_RETURN(Matrix pred, models[i].Predict(x));
    if (!AllFinite(pred.data())) {
      return Status::InvalidArgument(StrFormat(
          "%s: model %zu produced non-finite predictions", what, i));
    }
    if (i > 0 && (pred.rows() != preds[0].rows() ||
                  pred.cols() != preds[0].cols())) {
      return Status::InvalidArgument(
          StrFormat("%s: model %zu prediction shape differs", what, i));
    }
    preds.push_back(std::move(pred));
  }
  Matrix out(preds[0].rows(), preds[0].cols());
  std::vector<double> column(models.size());
  for (size_t c = 0; c < out.size(); ++c) {
    for (size_t i = 0; i < models.size(); ++i) column[i] = preds[i].data()[c];
    out.data()[c] = reduce(&column);
  }
  return out;
}

/// Clone the survivor subset (no weights involved).
Result<std::vector<ml::SequentialModel>> FilterAlive(
    const std::vector<ml::SequentialModel>& models,
    const std::vector<bool>& alive, const char* what) {
  if (models.size() != alive.size()) {
    return Status::InvalidArgument(StrFormat("%s: %zu models, %zu flags",
                                             what, models.size(),
                                             alive.size()));
  }
  std::vector<ml::SequentialModel> survivors;
  for (size_t i = 0; i < models.size(); ++i) {
    if (alive[i]) survivors.push_back(models[i].Clone());
  }
  if (survivors.empty()) {
    return Status::FailedPrecondition(StrFormat("%s: no survivors", what));
  }
  return survivors;
}

}  // namespace

Result<ml::SequentialModel> CoordinateMedianParameters(
    const std::vector<ml::SequentialModel>& models) {
  QENS_RETURN_NOT_OK(CheckRobustInput(models, "coordinate-median"));
  return ReduceParameters(models, MedianInPlace);
}

Result<ml::SequentialModel> TrimmedMeanParameters(
    const std::vector<ml::SequentialModel>& models, double trim_beta) {
  QENS_RETURN_NOT_OK(CheckRobustInput(models, "trimmed-mean"));
  QENS_ASSIGN_OR_RETURN(size_t trim,
                        TrimCount(models.size(), trim_beta, "trimmed-mean"));
  return ReduceParameters(models, [trim](std::vector<double>* column) {
    return TrimmedMeanInPlace(column, trim);
  });
}

Result<ml::SequentialModel> FedAvgNormClipped(
    const std::vector<ml::SequentialModel>& models,
    const std::vector<double>& weights, const ml::SequentialModel& reference,
    double clip_norm) {
  QENS_RETURN_NOT_OK(CheckRobustInput(models, "clipped-fedavg"));
  if (weights.size() != models.size()) {
    return Status::InvalidArgument(
        StrFormat("clipped-fedavg: %zu weights for %zu models",
                  weights.size(), models.size()));
  }
  if (!models[0].SameArchitecture(reference)) {
    return Status::InvalidArgument(
        "clipped-fedavg: reference architecture differs from the models");
  }
  if (!(clip_norm > 0.0) || !std::isfinite(clip_norm)) {
    return Status::InvalidArgument(StrFormat(
        "clipped-fedavg: clip_norm must be finite and > 0, got %g",
        clip_norm));
  }
  const std::vector<double> ref = reference.GetParameters();
  if (!AllFinite(ref)) {
    return Status::InvalidArgument(
        "clipped-fedavg: reference has non-finite parameters");
  }
  QENS_ASSIGN_OR_RETURN(std::vector<double> lambda,
                        vec::NormalizeWeights(weights));
  std::vector<double> merged = ref;
  for (size_t i = 0; i < models.size(); ++i) {
    std::vector<double> delta = vec::Sub(models[i].GetParameters(), ref);
    const double norm = vec::Norm2(delta);
    const double scale =
        norm > clip_norm ? lambda[i] * clip_norm / norm : lambda[i];
    vec::AxpyInPlace(&merged, scale, delta);
  }
  ml::SequentialModel out = models[0].Clone();
  QENS_RETURN_NOT_OK(out.SetParameters(merged));
  return out;
}

Result<Matrix> AggregatePredictionsMedian(
    const std::vector<ml::SequentialModel>& models, const Matrix& x) {
  return ReducePredictions(models, x, "median-predictions", MedianInPlace);
}

Result<Matrix> AggregatePredictionsTrimmed(
    const std::vector<ml::SequentialModel>& models, const Matrix& x,
    double trim_beta) {
  QENS_ASSIGN_OR_RETURN(
      size_t trim,
      TrimCount(models.size(), trim_beta, "trimmed-predictions"));
  return ReducePredictions(models, x, "trimmed-predictions",
                           [trim](std::vector<double>* column) {
                             return TrimmedMeanInPlace(column, trim);
                           });
}

Result<std::vector<double>> PartialWeights(const std::vector<double>& weights,
                                           const std::vector<bool>& alive) {
  if (alive.size() != weights.size()) {
    return Status::InvalidArgument(
        StrFormat("partial weights: %zu alive flags for %zu weights",
                  alive.size(), weights.size()));
  }
  size_t survivors = 0;
  double survivor_mass = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] < 0.0) {
      return Status::InvalidArgument("partial weights: negative weight");
    }
    if (alive[i]) {
      ++survivors;
      survivor_mass += weights[i];
    }
  }
  if (survivors == 0) {
    return Status::FailedPrecondition("partial weights: no survivors");
  }
  // Equal-weight fallback also when the surviving mass is denormal: a
  // sub-normal sum (e.g. weights {1e-320, 0, 0}) survives the > 0 test but
  // dividing by it overflows into huge or infinite lambdas.
  const bool usable_mass =
      survivor_mass >= std::numeric_limits<double>::min();
  std::vector<double> out(weights.size(), 0.0);
  for (size_t i = 0; i < weights.size(); ++i) {
    if (!alive[i]) continue;
    out[i] = usable_mass ? weights[i] / survivor_mass
                         : 1.0 / static_cast<double>(survivors);
  }
  return out;
}

bool MeetsQuorum(size_t survivors, size_t planned, double min_quorum_frac) {
  if (survivors == 0) return false;
  const double frac = std::min(1.0, std::max(0.0, min_quorum_frac));
  const size_t needed =
      static_cast<size_t>(std::ceil(frac * static_cast<double>(planned)));
  return survivors >= needed;
}

namespace {

/// Compact the survivor subset of (models, weights) into dense vectors for
/// the full-participation aggregators. Weights arrive pre-renormalized.
struct SurvivorView {
  std::vector<ml::SequentialModel> models;
  std::vector<double> weights;
};

Result<SurvivorView> CompactSurvivors(
    const std::vector<ml::SequentialModel>& models,
    const std::vector<double>& weights, const std::vector<bool>& alive) {
  if (models.size() != weights.size() || models.size() != alive.size()) {
    return Status::InvalidArgument(
        StrFormat("partial aggregate: %zu models, %zu weights, %zu flags",
                  models.size(), weights.size(), alive.size()));
  }
  QENS_ASSIGN_OR_RETURN(std::vector<double> lambda,
                        PartialWeights(weights, alive));
  SurvivorView view;
  for (size_t i = 0; i < models.size(); ++i) {
    if (!alive[i]) continue;
    view.models.push_back(models[i].Clone());
    view.weights.push_back(lambda[i]);
  }
  return view;
}

}  // namespace

Result<Matrix> AggregatePredictionsPartial(
    const std::vector<ml::SequentialModel>& models,
    const std::vector<double>& weights, const std::vector<bool>& alive,
    const Matrix& x) {
  QENS_ASSIGN_OR_RETURN(SurvivorView view,
                        CompactSurvivors(models, weights, alive));
  return AggregatePredictionsWeighted(view.models, view.weights, x);
}

Result<ml::SequentialModel> FedAvgParametersPartial(
    const std::vector<ml::SequentialModel>& models,
    const std::vector<double>& weights, const std::vector<bool>& alive) {
  QENS_ASSIGN_OR_RETURN(SurvivorView view,
                        CompactSurvivors(models, weights, alive));
  return FedAvgParameters(view.models, view.weights);
}

Result<ml::SequentialModel> CoordinateMedianParametersPartial(
    const std::vector<ml::SequentialModel>& models,
    const std::vector<bool>& alive) {
  QENS_ASSIGN_OR_RETURN(std::vector<ml::SequentialModel> survivors,
                        FilterAlive(models, alive, "partial median"));
  return CoordinateMedianParameters(survivors);
}

Result<ml::SequentialModel> TrimmedMeanParametersPartial(
    const std::vector<ml::SequentialModel>& models,
    const std::vector<bool>& alive, double trim_beta) {
  QENS_ASSIGN_OR_RETURN(std::vector<ml::SequentialModel> survivors,
                        FilterAlive(models, alive, "partial trimmed-mean"));
  return TrimmedMeanParameters(survivors, trim_beta);
}

Result<ml::SequentialModel> FedAvgNormClippedPartial(
    const std::vector<ml::SequentialModel>& models,
    const std::vector<double>& weights, const std::vector<bool>& alive,
    const ml::SequentialModel& reference, double clip_norm) {
  QENS_ASSIGN_OR_RETURN(SurvivorView view,
                        CompactSurvivors(models, weights, alive));
  return FedAvgNormClipped(view.models, view.weights, reference, clip_norm);
}

Result<Matrix> AggregatePredictionsMedianPartial(
    const std::vector<ml::SequentialModel>& models,
    const std::vector<bool>& alive, const Matrix& x) {
  QENS_ASSIGN_OR_RETURN(
      std::vector<ml::SequentialModel> survivors,
      FilterAlive(models, alive, "partial median-predictions"));
  return AggregatePredictionsMedian(survivors, x);
}

Result<Matrix> AggregatePredictionsTrimmedPartial(
    const std::vector<ml::SequentialModel>& models,
    const std::vector<bool>& alive, const Matrix& x, double trim_beta) {
  QENS_ASSIGN_OR_RETURN(
      std::vector<ml::SequentialModel> survivors,
      FilterAlive(models, alive, "partial trimmed-predictions"));
  return AggregatePredictionsTrimmed(survivors, x, trim_beta);
}

Result<EnsembleModel> EnsembleModel::Create(
    std::vector<ml::SequentialModel> models, std::vector<double> weights) {
  if (models.empty()) return Status::InvalidArgument("ensemble: no models");
  if (weights.size() != models.size()) {
    return Status::InvalidArgument(
        StrFormat("ensemble: %zu weights for %zu models", weights.size(),
                  models.size()));
  }
  for (double w : weights) {
    if (w < 0.0) {
      return Status::InvalidArgument("ensemble: negative weight");
    }
  }
  return EnsembleModel(std::move(models), std::move(weights));
}

Result<Matrix> EnsembleModel::Predict(
    const Matrix& x, AggregationKind kind,
    const RobustAggregationOptions& robust) const {
  switch (kind) {
    case AggregationKind::kModelAveraging:
      return AggregatePredictions(models_, x);
    case AggregationKind::kWeightedAveraging:
      return AggregatePredictionsWeighted(models_, weights_, x);
    case AggregationKind::kFedAvgParameters: {
      QENS_ASSIGN_OR_RETURN(ml::SequentialModel merged,
                            FedAvgParameters(models_, weights_));
      return merged.Predict(x);
    }
    case AggregationKind::kCoordinateMedian: {
      QENS_ASSIGN_OR_RETURN(ml::SequentialModel merged,
                            CoordinateMedianParameters(models_));
      return merged.Predict(x);
    }
    case AggregationKind::kTrimmedMean: {
      QENS_ASSIGN_OR_RETURN(
          ml::SequentialModel merged,
          TrimmedMeanParameters(models_, robust.trim_beta));
      return merged.Predict(x);
    }
    case AggregationKind::kNormClippedFedAvg: {
      if (robust.reference == nullptr) {
        return Status::InvalidArgument(
            "ensemble: norm-clipped-fedavg needs robust.reference");
      }
      QENS_ASSIGN_OR_RETURN(
          ml::SequentialModel merged,
          FedAvgNormClipped(models_, weights_, *robust.reference,
                            robust.clip_norm));
      return merged.Predict(x);
    }
  }
  return Status::Internal("ensemble: unhandled aggregation kind");
}

}  // namespace qens::fl
