#include "qens/fl/aggregation.h"

#include <algorithm>
#include <cmath>

#include "qens/common/string_util.h"
#include "qens/tensor/vector_ops.h"

namespace qens::fl {

const char* AggregationKindName(AggregationKind kind) {
  switch (kind) {
    case AggregationKind::kModelAveraging:
      return "model-averaging";
    case AggregationKind::kWeightedAveraging:
      return "weighted-averaging";
    case AggregationKind::kFedAvgParameters:
      return "fedavg-parameters";
  }
  return "unknown";
}

Result<AggregationKind> ParseAggregationKind(const std::string& name) {
  const std::string n = ToLower(Trim(name));
  if (n == "model-averaging" || n == "average" || n == "averaging") {
    return AggregationKind::kModelAveraging;
  }
  if (n == "weighted-averaging" || n == "weighted") {
    return AggregationKind::kWeightedAveraging;
  }
  if (n == "fedavg-parameters" || n == "fedavg") {
    return AggregationKind::kFedAvgParameters;
  }
  return Status::InvalidArgument("unknown aggregation: '" + name + "'");
}

Result<Matrix> AggregatePredictions(
    const std::vector<ml::SequentialModel>& models, const Matrix& x) {
  const std::vector<double> equal(models.size(), 1.0);
  return AggregatePredictionsWeighted(models, equal, x);
}

Result<Matrix> AggregatePredictionsWeighted(
    const std::vector<ml::SequentialModel>& models,
    const std::vector<double>& weights, const Matrix& x) {
  if (models.empty()) {
    return Status::InvalidArgument("aggregate: no models");
  }
  if (weights.size() != models.size()) {
    return Status::InvalidArgument(
        StrFormat("aggregate: %zu weights for %zu models", weights.size(),
                  models.size()));
  }
  QENS_ASSIGN_OR_RETURN(std::vector<double> lambda,
                        vec::NormalizeWeights(weights));

  Matrix acc;
  for (size_t i = 0; i < models.size(); ++i) {
    QENS_ASSIGN_OR_RETURN(Matrix pred, models[i].Predict(x));
    if (i == 0) {
      pred.Scale(lambda[i]);
      acc = std::move(pred);
    } else {
      QENS_RETURN_NOT_OK(acc.Axpy(lambda[i], pred));
    }
  }
  return acc;
}

Result<ml::SequentialModel> FedAvgParameters(
    const std::vector<ml::SequentialModel>& models,
    const std::vector<double>& weights) {
  if (models.empty()) return Status::InvalidArgument("fedavg: no models");
  if (weights.size() != models.size()) {
    return Status::InvalidArgument(
        StrFormat("fedavg: %zu weights for %zu models", weights.size(),
                  models.size()));
  }
  for (size_t i = 1; i < models.size(); ++i) {
    if (!models[i].SameArchitecture(models[0])) {
      return Status::InvalidArgument(
          StrFormat("fedavg: model %zu architecture differs from model 0", i));
    }
  }
  QENS_ASSIGN_OR_RETURN(std::vector<double> lambda,
                        vec::NormalizeWeights(weights));

  std::vector<double> params = models[0].GetParameters();
  for (double& p : params) p *= lambda[0];
  for (size_t i = 1; i < models.size(); ++i) {
    const std::vector<double> pi = models[i].GetParameters();
    vec::AxpyInPlace(&params, lambda[i], pi);
  }
  ml::SequentialModel out = models[0].Clone();
  QENS_RETURN_NOT_OK(out.SetParameters(params));
  return out;
}

Result<std::vector<double>> PartialWeights(const std::vector<double>& weights,
                                           const std::vector<bool>& alive) {
  if (alive.size() != weights.size()) {
    return Status::InvalidArgument(
        StrFormat("partial weights: %zu alive flags for %zu weights",
                  alive.size(), weights.size()));
  }
  size_t survivors = 0;
  double survivor_mass = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] < 0.0) {
      return Status::InvalidArgument("partial weights: negative weight");
    }
    if (alive[i]) {
      ++survivors;
      survivor_mass += weights[i];
    }
  }
  if (survivors == 0) {
    return Status::FailedPrecondition("partial weights: no survivors");
  }
  std::vector<double> out(weights.size(), 0.0);
  for (size_t i = 0; i < weights.size(); ++i) {
    if (!alive[i]) continue;
    out[i] = survivor_mass > 0.0 ? weights[i] / survivor_mass
                                 : 1.0 / static_cast<double>(survivors);
  }
  return out;
}

bool MeetsQuorum(size_t survivors, size_t planned, double min_quorum_frac) {
  if (survivors == 0) return false;
  const double frac = std::min(1.0, std::max(0.0, min_quorum_frac));
  const size_t needed =
      static_cast<size_t>(std::ceil(frac * static_cast<double>(planned)));
  return survivors >= needed;
}

namespace {

/// Compact the survivor subset of (models, weights) into dense vectors for
/// the full-participation aggregators. Weights arrive pre-renormalized.
struct SurvivorView {
  std::vector<ml::SequentialModel> models;
  std::vector<double> weights;
};

Result<SurvivorView> CompactSurvivors(
    const std::vector<ml::SequentialModel>& models,
    const std::vector<double>& weights, const std::vector<bool>& alive) {
  if (models.size() != weights.size() || models.size() != alive.size()) {
    return Status::InvalidArgument(
        StrFormat("partial aggregate: %zu models, %zu weights, %zu flags",
                  models.size(), weights.size(), alive.size()));
  }
  QENS_ASSIGN_OR_RETURN(std::vector<double> lambda,
                        PartialWeights(weights, alive));
  SurvivorView view;
  for (size_t i = 0; i < models.size(); ++i) {
    if (!alive[i]) continue;
    view.models.push_back(models[i].Clone());
    view.weights.push_back(lambda[i]);
  }
  return view;
}

}  // namespace

Result<Matrix> AggregatePredictionsPartial(
    const std::vector<ml::SequentialModel>& models,
    const std::vector<double>& weights, const std::vector<bool>& alive,
    const Matrix& x) {
  QENS_ASSIGN_OR_RETURN(SurvivorView view,
                        CompactSurvivors(models, weights, alive));
  return AggregatePredictionsWeighted(view.models, view.weights, x);
}

Result<ml::SequentialModel> FedAvgParametersPartial(
    const std::vector<ml::SequentialModel>& models,
    const std::vector<double>& weights, const std::vector<bool>& alive) {
  QENS_ASSIGN_OR_RETURN(SurvivorView view,
                        CompactSurvivors(models, weights, alive));
  return FedAvgParameters(view.models, view.weights);
}

Result<EnsembleModel> EnsembleModel::Create(
    std::vector<ml::SequentialModel> models, std::vector<double> weights) {
  if (models.empty()) return Status::InvalidArgument("ensemble: no models");
  if (weights.size() != models.size()) {
    return Status::InvalidArgument(
        StrFormat("ensemble: %zu weights for %zu models", weights.size(),
                  models.size()));
  }
  for (double w : weights) {
    if (w < 0.0) {
      return Status::InvalidArgument("ensemble: negative weight");
    }
  }
  return EnsembleModel(std::move(models), std::move(weights));
}

Result<Matrix> EnsembleModel::Predict(const Matrix& x,
                                      AggregationKind kind) const {
  switch (kind) {
    case AggregationKind::kModelAveraging:
      return AggregatePredictions(models_, x);
    case AggregationKind::kWeightedAveraging:
      return AggregatePredictionsWeighted(models_, weights_, x);
    case AggregationKind::kFedAvgParameters: {
      QENS_ASSIGN_OR_RETURN(ml::SequentialModel merged,
                            FedAvgParameters(models_, weights_));
      return merged.Predict(x);
    }
  }
  return Status::Internal("ensemble: unhandled aggregation kind");
}

}  // namespace qens::fl
