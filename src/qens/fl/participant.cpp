#include "qens/fl/participant.h"

#include "qens/common/stopwatch.h"
#include "qens/common/string_util.h"

namespace qens::fl {
namespace {

/// Build a trainer for local fitting. Local fits disable the validation
/// split: the paper's per-cluster incremental passes are short and the
/// cluster may be small; validation is done leader-side on query-region
/// test data.
Result<std::unique_ptr<ml::Trainer>> LocalTrainer(
    const ml::HyperParams& hyper, size_t epochs, uint64_t seed) {
  ml::HyperParams hp = hyper;
  hp.epochs = epochs;
  hp.validation_split = 0.0;
  return ml::BuildTrainer(hp, seed);
}

}  // namespace

Result<LocalTrainResult> TrainOnSupportingClusters(
    const sim::EdgeNode& node, const ml::SequentialModel& global_model,
    const std::vector<size_t>& supporting_clusters,
    const LocalTrainOptions& options, const sim::CostModel& cost_model) {
  if (supporting_clusters.empty()) {
    return Status::InvalidArgument(
        StrFormat("node %zu: no supporting clusters to train on", node.id()));
  }
  if (options.epochs_per_cluster == 0) {
    return Status::InvalidArgument("epochs_per_cluster must be > 0");
  }

  Stopwatch watch;
  LocalTrainResult result;
  result.model = global_model.Clone();
  result.samples_total = node.NumSamples();

  QENS_ASSIGN_OR_RETURN(
      std::unique_ptr<ml::Trainer> trainer,
      LocalTrainer(options.hyper, options.epochs_per_cluster,
                   options.seed + node.id()));

  // Incremental pass: one Fit per supporting cluster, in ranking order as
  // provided — the model carries its weights from cluster to cluster.
  for (size_t cluster_id : supporting_clusters) {
    QENS_ASSIGN_OR_RETURN(data::Dataset cluster_data,
                          node.ClusterData(cluster_id));
    QENS_ASSIGN_OR_RETURN(
        ml::TrainReport report,
        trainer->Fit(&result.model, cluster_data.features(),
                     cluster_data.targets()));
    result.samples_used += cluster_data.NumSamples();
    result.samples_seen += report.samples_seen;
    result.cluster_final_loss.push_back(report.final_train_loss());
  }

  result.sim_train_seconds = cost_model.TrainingSeconds(
      result.samples_used, options.epochs_per_cluster, node.capacity());
  result.wall_seconds = watch.ElapsedSeconds();
  return result;
}

Result<LocalTrainResult> TrainOnFullData(const sim::EdgeNode& node,
                                         const ml::SequentialModel& global_model,
                                         const LocalTrainOptions& options,
                                         const sim::CostModel& cost_model) {
  Stopwatch watch;
  LocalTrainResult result;
  result.model = global_model.Clone();
  result.samples_total = node.NumSamples();

  QENS_ASSIGN_OR_RETURN(
      std::unique_ptr<ml::Trainer> trainer,
      LocalTrainer(options.hyper, options.hyper.epochs,
                   options.seed + node.id()));
  const data::Dataset& local = node.local_data();
  QENS_ASSIGN_OR_RETURN(
      ml::TrainReport report,
      trainer->Fit(&result.model, local.features(), local.targets()));
  result.samples_used = local.NumSamples();
  result.samples_seen = report.samples_seen;
  result.cluster_final_loss.push_back(report.final_train_loss());

  result.sim_train_seconds = cost_model.TrainingSeconds(
      result.samples_used, options.hyper.epochs, node.capacity());
  result.wall_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace qens::fl
