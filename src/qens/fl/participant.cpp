#include "qens/fl/participant.h"

#include <algorithm>

#include "qens/common/stopwatch.h"
#include "qens/common/string_util.h"

namespace qens::fl {
namespace {

/// Build a trainer for local fitting. Local fits disable the validation
/// split: the paper's per-cluster incremental passes are short and the
/// cluster may be small; validation is done leader-side on query-region
/// test data.
Result<std::unique_ptr<ml::Trainer>> LocalTrainer(
    const ml::HyperParams& hyper, size_t epochs, uint64_t seed) {
  ml::HyperParams hp = hyper;
  hp.epochs = epochs;
  hp.validation_split = 0.0;
  return ml::BuildTrainer(hp, seed);
}

/// Mirror targets within their observed range: y' = lo + hi - y. Keeps the
/// poisoned labels in-distribution while inverting every trend the honest
/// fit would learn.
Matrix MirrorTargets(const Matrix& y) {
  double lo = y.data().empty() ? 0.0 : y.data()[0];
  double hi = lo;
  for (double v : y.data()) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  Matrix flipped = y;
  for (double& v : flipped.data()) v = lo + hi - v;
  return flipped;
}

}  // namespace

Result<LocalTrainResult> TrainOnSupportingClusters(
    const sim::EdgeNode& node, const ml::SequentialModel& global_model,
    const std::vector<size_t>& supporting_clusters,
    const LocalTrainOptions& options, const sim::CostModel& cost_model) {
  if (supporting_clusters.empty()) {
    return Status::InvalidArgument(
        StrFormat("node %zu: no supporting clusters to train on", node.id()));
  }
  if (options.epochs_per_cluster == 0) {
    return Status::InvalidArgument("epochs_per_cluster must be > 0");
  }

  Stopwatch watch;
  LocalTrainResult result;
  result.model = global_model.Clone();
  result.samples_total = node.NumSamples();

  QENS_ASSIGN_OR_RETURN(
      std::unique_ptr<ml::Trainer> trainer,
      LocalTrainer(options.hyper, options.epochs_per_cluster,
                   options.seed + node.id()));

  // Incremental pass: one Fit per supporting cluster, in ranking order as
  // provided — the model carries its weights from cluster to cluster.
  for (size_t cluster_id : supporting_clusters) {
    QENS_ASSIGN_OR_RETURN(data::Dataset cluster_data,
                          node.ClusterData(cluster_id));
    const Matrix targets = options.poison_labels
                               ? MirrorTargets(cluster_data.targets())
                               : cluster_data.targets();
    QENS_ASSIGN_OR_RETURN(
        ml::TrainReport report,
        trainer->Fit(&result.model, cluster_data.features(), targets));
    result.samples_used += cluster_data.NumSamples();
    result.samples_seen += report.samples_seen;
    result.cluster_final_loss.push_back(report.final_train_loss());
  }

  result.sim_train_seconds = cost_model.TrainingSeconds(
      result.samples_used, options.epochs_per_cluster, node.capacity());
  result.wall_seconds = watch.ElapsedSeconds();
  return result;
}

Result<LocalTrainResult> TrainOnFullData(const sim::EdgeNode& node,
                                         const ml::SequentialModel& global_model,
                                         const LocalTrainOptions& options,
                                         const sim::CostModel& cost_model) {
  Stopwatch watch;
  LocalTrainResult result;
  result.model = global_model.Clone();
  result.samples_total = node.NumSamples();

  QENS_ASSIGN_OR_RETURN(
      std::unique_ptr<ml::Trainer> trainer,
      LocalTrainer(options.hyper, options.hyper.epochs,
                   options.seed + node.id()));
  const data::Dataset& local = node.local_data();
  const Matrix targets = options.poison_labels
                             ? MirrorTargets(local.targets())
                             : local.targets();
  QENS_ASSIGN_OR_RETURN(
      ml::TrainReport report,
      trainer->Fit(&result.model, local.features(), targets));
  result.samples_used = local.NumSamples();
  result.samples_seen = report.samples_seen;
  result.cluster_final_loss.push_back(report.final_train_loss());

  result.sim_train_seconds = cost_model.TrainingSeconds(
      result.samples_used, options.hyper.epochs, node.capacity());
  result.wall_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace qens::fl
