#include "qens/fl/planner.h"

#include <algorithm>
#include <sstream>

#include "qens/common/rng.h"
#include "qens/common/string_util.h"
#include "qens/fl/seed_derivation.h"
#include "qens/ml/model_codec.h"
#include "qens/ml/model_io.h"
#include "qens/query/selectivity_estimator.h"

namespace qens::fl {

std::string QueryPlan::ToString() const {
  std::ostringstream out;
  out << "plan for " << query.ToString() << ": ";
  if (!executable) {
    out << "NOT EXECUTABLE (no supporting data)";
    return out.str();
  }
  out << nodes.size() << " node(s), " << total_supporting_samples
      << " supporting samples, ~"
      << StrFormat("%.0f", total_estimated_rows) << " rows in region, "
      << StrFormat("%.4f", est_round_seconds) << "s round, "
      << est_comm_bytes << " bytes";
  return out.str();
}

Result<QueryPlan> PlanQuery(
    const std::vector<selection::NodeProfile>& profiles,
    const std::vector<double>& capacities, const query::RangeQuery& query,
    const PlannerOptions& options) {
  if (!capacities.empty() && capacities.size() != profiles.size()) {
    return Status::InvalidArgument(
        StrFormat("PlanQuery: %zu capacities for %zu profiles",
                  capacities.size(), profiles.size()));
  }
  QueryPlan plan;
  plan.query = query;

  // Rank and cut exactly like the leader would.
  QENS_ASSIGN_OR_RETURN(std::vector<selection::NodeRank> ranks,
                        selection::RankNodes(profiles, query, options.ranking));
  QENS_ASSIGN_OR_RETURN(
      std::vector<selection::NodeRank> selected,
      selection::SelectQueryDriven(ranks, options.selection));

  // Size of the model that would be broadcast / returned. Under the text
  // serializer the size depends on the weight digits, so with a session
  // seed we rebuild the exact model the session's init stream would
  // produce; otherwise a representative fixed-seed instance. Under the
  // binary codec both directions are closed-form from the architecture
  // alone — exact regardless of the seed.
  size_t down_bytes = 0;
  size_t up_bytes = 0;
  if (!profiles.empty() && !profiles[0].clusters.empty()) {
    const size_t input_features = profiles[0].clusters[0].centroid.size();
    if (input_features > 0) {
      Rng rng(options.session_seed.has_value()
                  ? ModelInitSeed(*options.session_seed, query.id,
                                  options.strong_seed_mix)
                  : 1);
      QENS_ASSIGN_OR_RETURN(ml::SequentialModel model,
                            ml::BuildModel(options.hyper, input_features,
                                           &rng));
      if (options.wire.enabled) {
        down_bytes = ml::EncodedModelBytes(model,
                                           ml::DownlinkKind(options.wire),
                                           options.wire.top_k_fraction);
        up_bytes = ml::EncodedModelBytes(model, ml::UplinkKind(options.wire),
                                         options.wire.top_k_fraction);
      } else {
        down_bytes = ml::SerializedModelBytes(model);
        up_bytes = down_bytes;  // Same text format both ways.
      }
    }
  }

  const sim::CostModel cost(options.cost);
  double max_train = 0.0;
  for (const auto& rank : selected) {
    if (rank.supporting_clusters == 0) continue;
    NodePlan node;
    node.node_id = rank.node_id;
    node.ranking = rank.ranking;
    node.supporting_clusters = rank.supporting_clusters;
    node.supporting_samples = rank.supporting_samples;

    // Digest-density estimate of the rows actually inside the region.
    const selection::NodeProfile* profile = nullptr;
    for (const auto& p : profiles) {
      if (p.node_id == rank.node_id) {
        profile = &p;
        break;
      }
    }
    if (profile == nullptr) {
      return Status::Internal("PlanQuery: selected node without profile");
    }
    QENS_ASSIGN_OR_RETURN(
        query::NodeSelectivityEstimate estimate,
        query::EstimateNodeSelectivity(profile->clusters, query));
    node.estimated_rows = estimate.estimated_rows;

    const double capacity =
        capacities.empty() ? 1.0 : capacities[rank.node_id];
    node.est_train_seconds = cost.TrainingSeconds(
        node.supporting_samples, options.epochs_per_cluster, capacity);
    max_train = std::max(max_train, node.est_train_seconds);

    plan.total_supporting_samples += node.supporting_samples;
    plan.total_estimated_rows += node.estimated_rows;
    plan.est_comm_bytes += down_bytes + up_bytes;
    plan.nodes.push_back(std::move(node));
  }

  plan.executable = !plan.nodes.empty();
  if (plan.executable) {
    // Participants train in parallel; transfers are per node.
    plan.est_round_seconds =
        max_train + cost.RoundTripSeconds(down_bytes, up_bytes) *
                        static_cast<double>(plan.nodes.size());
  }
  return plan;
}

}  // namespace qens::fl
