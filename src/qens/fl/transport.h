#ifndef QENS_FL_TRANSPORT_H_
#define QENS_FL_TRANSPORT_H_

/// \file transport.h
/// The communication seam of the federated protocol. Every leader <->
/// participant exchange executed by the RoundEngine goes through one
/// Transport, so the protocol logic is independent of how bytes actually
/// move (and of where they are accounted).
///
/// `InProcessTransport` is the simulation backend: it forwards to a
/// `sim::Network`, which prices each transfer through the platform cost
/// model and keeps the byte/tag counters the benches and tests read. A
/// session-private Network gives each QuerySession isolated accounting; the
/// Federation's sequential API wraps the environment-owned Network so its
/// historical counters keep working unchanged.

#include <cstddef>
#include <string>

#include "qens/sim/network.h"

namespace qens::fl {

/// Abstract transfer channel between fleet members. Implementations must
/// account every transmission (including ones the fault layer later counts
/// as lost — the bytes still went out) and return the simulated transfer
/// seconds charged to the sender.
class Transport {
 public:
  virtual ~Transport();

  /// Transmit `bytes` from node `from` to node `to`; returns the simulated
  /// transfer seconds. `tag` labels the traffic class ("model-down",
  /// "model-up", "model-down-lost", ...).
  virtual double Send(size_t from, size_t to, size_t bytes,
                      std::string tag) = 0;

  /// \name Accounting
  /// @{
  virtual size_t total_messages() const = 0;
  virtual size_t total_bytes() const = 0;
  virtual double total_transfer_seconds() const = 0;
  virtual size_t BytesWithTag(const std::string& tag) const = 0;
  /// @}
};

/// Simulation backend: forwards to a (non-owned) sim::Network.
class InProcessTransport final : public Transport {
 public:
  /// `network` must outlive the transport.
  explicit InProcessTransport(sim::Network* network) : network_(network) {}

  double Send(size_t from, size_t to, size_t bytes,
              std::string tag) override {
    return network_->Send(from, to, bytes, std::move(tag));
  }

  size_t total_messages() const override {
    return network_->total_messages();
  }
  size_t total_bytes() const override { return network_->total_bytes(); }
  double total_transfer_seconds() const override {
    return network_->total_transfer_seconds();
  }
  size_t BytesWithTag(const std::string& tag) const override {
    return network_->BytesWithTag(tag);
  }

  const sim::Network& network() const { return *network_; }

 private:
  sim::Network* network_;
};

}  // namespace qens::fl

#endif  // QENS_FL_TRANSPORT_H_
