#ifndef QENS_FL_UPDATE_VALIDATOR_H_
#define QENS_FL_UPDATE_VALIDATOR_H_

/// \file update_validator.h
/// Leader-side screening of participant updates before aggregation.
///
/// A participant's returned model is untrusted input: a Byzantine node can
/// send NaN/Inf parameters, a sign-flipped or gamma-scaled update, or a
/// model honestly trained on poisoned labels. The validator inspects each
/// returned model against the round's reference (the global model the
/// leader broadcast) and renders a per-update verdict:
///
///   1. finite check      — every parameter must be finite;
///   2. absolute bound    — ||w_i - w_ref||_2 <= max_update_norm;
///   3. relative bound    — update norm must not exceed the round median by
///                          more than norm_mad_k MADs (median absolute
///                          deviation), a scale-free outlier test;
///   4. holdout loss      — the update's loss on a leader-held holdout set
///                          must not exceed holdout_loss_factor x an anchor
///                          loss: min(median candidate loss, loss of the
///                          broadcast reference model). The reference anchor
///                          keeps this check effective in small and
///                          attacker-majority rounds where median statistics
///                          are unavailable or corrupted.
///
/// Each check is individually opt-in (0 disables the bounds); rejected
/// updates are meant to be dropped via the existing alive/PartialWeights
/// machinery and the offending nodes quarantined by the federation loop.

#include <cstddef>
#include <string>
#include <vector>

#include "qens/common/status.h"
#include "qens/ml/sequential_model.h"
#include "qens/tensor/matrix.h"

namespace qens::fl {

/// Why an update was rejected (kNone == accepted). Checks run in the order
/// below; the first failing check names the reason.
enum class RejectReason {
  kNone = 0,
  kNonFinite,     ///< NaN/Inf parameter.
  kAbsNormBound,  ///< Update norm above the absolute bound.
  kNormOutlier,   ///< Update norm a median/MAD outlier within the round.
  kHoldoutLoss,   ///< Holdout loss far above the round median.
};

/// Stable wire name ("accepted", "non_finite", "abs_norm", "norm_outlier",
/// "holdout_loss").
const char* RejectReasonName(RejectReason reason);

/// Validation knobs. Defaults enable only the finite check; every bound is
/// opt-in so a fault-free configuration never rejects an honest update.
struct UpdateValidatorOptions {
  /// Reject updates containing NaN/Inf parameters.
  bool check_finite = true;
  /// Absolute bound on ||w_i - w_ref||_2; 0 disables.
  double max_update_norm = 0.0;
  /// Reject update norms more than this many MADs above the round median;
  /// 0 disables. Typical values 3-6.
  double norm_mad_k = 0.0;
  /// Reject updates whose holdout loss exceeds this factor times the anchor
  /// loss — min(round median holdout loss, reference-model holdout loss);
  /// 0 disables. Requires holdout data at Validate().
  double holdout_loss_factor = 0.0;
  /// Cap on holdout rows evaluated per update (keeps validation cheap).
  size_t holdout_max_rows = 256;
  /// Median/MAD and median-loss tests need at least this many candidate
  /// updates to be meaningful; below it they are skipped.
  size_t min_updates_for_stats = 3;
};

/// Per-update verdict.
struct UpdateVerdict {
  bool accepted = true;
  RejectReason reason = RejectReason::kNone;
  /// ||w_i - w_ref||_2; NaN when the update is non-finite.
  double update_norm = 0.0;
  /// Holdout MSE; only meaningful when the holdout check ran.
  double holdout_loss = 0.0;
};

/// The round's validation outcome: one verdict per candidate, aligned with
/// the input order, plus aggregate counts per reason.
struct ValidationReport {
  std::vector<UpdateVerdict> verdicts;
  size_t accepted = 0;
  size_t rejected_non_finite = 0;
  size_t rejected_abs_norm = 0;
  size_t rejected_norm_outlier = 0;
  size_t rejected_holdout = 0;

  size_t rejected() const {
    return rejected_non_finite + rejected_abs_norm + rejected_norm_outlier +
           rejected_holdout;
  }
  /// "accepted 4/6 (non_finite 1, norm_outlier 1)"-style summary.
  std::string Summary() const;
};

/// Screens a round's returned models. Stateless; construct once per
/// federation from options.
class UpdateValidator {
 public:
  static Result<UpdateValidator> Create(const UpdateValidatorOptions& options);

  const UpdateValidatorOptions& options() const { return options_; }

  /// True when some check beyond plain finiteness is configured (used by
  /// callers to decide whether holdout data must be supplied).
  bool wants_holdout() const { return options_.holdout_loss_factor > 0.0; }

  /// Validate `updates` against the broadcast `reference`. All models must
  /// share the reference's architecture (architecture mismatch is a hard
  /// error, not a verdict). `holdout_x`/`holdout_y` feed the holdout-loss
  /// check and may be null when that check is disabled.
  Result<ValidationReport> Validate(
      const std::vector<ml::SequentialModel>& updates,
      const ml::SequentialModel& reference, const Matrix* holdout_x = nullptr,
      const Matrix* holdout_y = nullptr) const;

 private:
  explicit UpdateValidator(UpdateValidatorOptions options)
      : options_(options) {}

  UpdateValidatorOptions options_;
};

}  // namespace qens::fl

#endif  // QENS_FL_UPDATE_VALIDATOR_H_
