#ifndef QENS_FL_AGGREGATION_H_
#define QENS_FL_AGGREGATION_H_

/// \file aggregation.h
/// Leader-side aggregation of the participants' local models (Section IV-B).
///
/// The paper aggregates in *prediction space*:
///   Model Averaging    (Eq. 6): y(q) = (1/l) * sum_i y_i(q)
///   Weighted Averaging (Eq. 7): y(q) = sum_i lambda_i y_i(q),
///                               lambda_i = r_i / sum_k r_k
/// As an extension (ablated in bench_x2), parameter-space FedAvg is also
/// provided: one model whose parameters are the (weighted) average of the
/// local models' parameters — valid only across identical architectures.

#include <string>
#include <vector>

#include "qens/common/status.h"
#include "qens/ml/sequential_model.h"
#include "qens/tensor/matrix.h"

namespace qens::fl {

/// The aggregation rules under study. The first three are the paper's
/// rules (plus the FedAvg extension); the last three are Byzantine-robust
/// parameter-space aggregators that bound the influence any single
/// corrupted update can exert on the merged model.
enum class AggregationKind {
  kModelAveraging,     ///< Eq. 6 — equal-weight prediction average.
  kWeightedAveraging,  ///< Eq. 7 — ranking-weighted prediction average.
  kFedAvgParameters,   ///< Extension — parameter-space weighted average.
  kCoordinateMedian,   ///< Robust — coordinate-wise parameter median.
  kTrimmedMean,        ///< Robust — coordinate-wise beta-trimmed mean.
  kNormClippedFedAvg,  ///< Robust — FedAvg over norm-clipped updates.
};

const char* AggregationKindName(AggregationKind kind);
Result<AggregationKind> ParseAggregationKind(const std::string& name);

/// Equal-weight prediction average (Eq. 6). Fails when `models` is empty,
/// architectures/output widths are incompatible with `x`, or any Predict
/// fails.
Result<Matrix> AggregatePredictions(const std::vector<ml::SequentialModel>& models,
                                    const Matrix& x);

/// Ranking-weighted prediction average (Eq. 7). `weights` are the raw
/// rankings r_i; they are normalized internally to lambda_i (must be
/// non-negative with a positive sum; one weight per model).
Result<Matrix> AggregatePredictionsWeighted(
    const std::vector<ml::SequentialModel>& models,
    const std::vector<double>& weights, const Matrix& x);

/// Parameter-space weighted average into a single model. All models must
/// share one architecture and carry only finite parameters (a single NaN
/// weight would otherwise silently poison the global model). `weights` as
/// in AggregatePredictionsWeighted; pass equal weights for plain FedAvg.
Result<ml::SequentialModel> FedAvgParameters(
    const std::vector<ml::SequentialModel>& models,
    const std::vector<double>& weights);

/// \name Byzantine-robust aggregation
/// Parameter-space aggregators that tolerate a bounded fraction of
/// arbitrarily corrupted (but finite) updates. All require one shared
/// architecture and reject non-finite parameters — run fl::UpdateValidator
/// first to strip NaN/Inf updates. Weights are deliberately ignored: a
/// weighted robust aggregate would let an attacker with a large ranking
/// dominate the very statistic meant to bound its influence.
/// @{

/// Coordinate-wise median of the models' parameters. Robust to < n/2
/// corrupted updates per coordinate; the even-n median averages the two
/// middle values.
Result<ml::SequentialModel> CoordinateMedianParameters(
    const std::vector<ml::SequentialModel>& models);

/// Coordinate-wise trimmed mean: drop the floor(trim_beta * n) smallest and
/// largest values of each coordinate, average the rest. Requires
/// trim_beta in [0, 0.5) and at least one surviving value per coordinate.
/// Robust to <= floor(trim_beta * n) corrupted updates.
Result<ml::SequentialModel> TrimmedMeanParameters(
    const std::vector<ml::SequentialModel>& models, double trim_beta);

/// FedAvg over norm-clipped updates: each update (w_i - reference) with L2
/// norm above `clip_norm` is rescaled to `clip_norm` before the weighted
/// average is added back to `reference`. Bounds the displacement any
/// single scaled/sign-flipped update can cause. clip_norm must be > 0.
Result<ml::SequentialModel> FedAvgNormClipped(
    const std::vector<ml::SequentialModel>& models,
    const std::vector<double>& weights, const ml::SequentialModel& reference,
    double clip_norm);

/// Prediction-space robust variants of Eq. 6: per-sample (and per-output)
/// median / trimmed mean over the models' predictions.
Result<Matrix> AggregatePredictionsMedian(
    const std::vector<ml::SequentialModel>& models, const Matrix& x);
Result<Matrix> AggregatePredictionsTrimmed(
    const std::vector<ml::SequentialModel>& models, const Matrix& x,
    double trim_beta);

/// @}

/// \name Partial participation (fault tolerance)
/// Under failures only a subset of the engaged nodes returns a model. The
/// round's weights are renormalized over the survivors so the aggregate
/// stays a convex combination (sum of surviving lambda_i == 1).
/// @{

/// Renormalize `weights` over the survivor subset: non-survivors get 0,
/// survivors keep their relative proportions scaled to sum 1. When the
/// surviving weight mass is zero (e.g. all-zero rankings), survivors fall
/// back to equal weights. Fails when sizes mismatch, a weight is negative,
/// or no entry of `alive` is true.
Result<std::vector<double>> PartialWeights(const std::vector<double>& weights,
                                           const std::vector<bool>& alive);

/// Quorum predicate: a round with `survivors` of `planned` participants
/// meets a `min_quorum_frac` quorum when survivors >= ceil(frac * planned)
/// and at least one participant survived. frac is clamped into [0, 1].
bool MeetsQuorum(size_t survivors, size_t planned, double min_quorum_frac);

/// Prediction-space aggregation restricted to the survivors. Dead entries'
/// models are never evaluated.
Result<Matrix> AggregatePredictionsPartial(
    const std::vector<ml::SequentialModel>& models,
    const std::vector<double>& weights, const std::vector<bool>& alive,
    const Matrix& x);

/// Parameter-space FedAvg restricted to the survivors.
Result<ml::SequentialModel> FedAvgParametersPartial(
    const std::vector<ml::SequentialModel>& models,
    const std::vector<double>& weights, const std::vector<bool>& alive);

/// Survivor-aware overloads of the robust aggregators: dead entries'
/// models are never read.
Result<ml::SequentialModel> CoordinateMedianParametersPartial(
    const std::vector<ml::SequentialModel>& models,
    const std::vector<bool>& alive);
Result<ml::SequentialModel> TrimmedMeanParametersPartial(
    const std::vector<ml::SequentialModel>& models,
    const std::vector<bool>& alive, double trim_beta);
Result<ml::SequentialModel> FedAvgNormClippedPartial(
    const std::vector<ml::SequentialModel>& models,
    const std::vector<double>& weights, const std::vector<bool>& alive,
    const ml::SequentialModel& reference, double clip_norm);
Result<Matrix> AggregatePredictionsMedianPartial(
    const std::vector<ml::SequentialModel>& models,
    const std::vector<bool>& alive, const Matrix& x);
Result<Matrix> AggregatePredictionsTrimmedPartial(
    const std::vector<ml::SequentialModel>& models,
    const std::vector<bool>& alive, const Matrix& x, double trim_beta);

/// @}

/// Knobs for the robust AggregationKinds (ignored by the paper rules).
struct RobustAggregationOptions {
  double trim_beta = 0.1;  ///< kTrimmedMean trim fraction, in [0, 0.5).
  double clip_norm = 1.0;  ///< kNormClippedFedAvg update-norm bound (> 0).
  /// Reference model the clipped updates are measured against; required
  /// for kNormClippedFedAvg (typically the round's incoming global model).
  const ml::SequentialModel* reference = nullptr;
};

/// A trained ensemble the leader keeps per query: the l local models plus
/// their rankings, able to answer with any aggregation rule.
class EnsembleModel {
 public:
  /// `weights` must align with `models` (raw rankings; needs a positive sum
  /// only when weighted/fedavg aggregation is requested).
  static Result<EnsembleModel> Create(std::vector<ml::SequentialModel> models,
                                      std::vector<double> weights);

  size_t size() const { return models_.size(); }
  const std::vector<ml::SequentialModel>& models() const { return models_; }
  const std::vector<double>& weights() const { return weights_; }

  /// Predict with the chosen rule. The robust parameter-space kinds take
  /// their knobs from `robust`; kNormClippedFedAvg additionally needs
  /// robust.reference set.
  Result<Matrix> Predict(const Matrix& x, AggregationKind kind,
                         const RobustAggregationOptions& robust =
                             RobustAggregationOptions()) const;

 private:
  EnsembleModel(std::vector<ml::SequentialModel> models,
                std::vector<double> weights)
      : models_(std::move(models)), weights_(std::move(weights)) {}

  std::vector<ml::SequentialModel> models_;
  std::vector<double> weights_;
};

}  // namespace qens::fl

#endif  // QENS_FL_AGGREGATION_H_
