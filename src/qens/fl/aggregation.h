#ifndef QENS_FL_AGGREGATION_H_
#define QENS_FL_AGGREGATION_H_

/// \file aggregation.h
/// Leader-side aggregation of the participants' local models (Section IV-B).
///
/// The paper aggregates in *prediction space*:
///   Model Averaging    (Eq. 6): y(q) = (1/l) * sum_i y_i(q)
///   Weighted Averaging (Eq. 7): y(q) = sum_i lambda_i y_i(q),
///                               lambda_i = r_i / sum_k r_k
/// As an extension (ablated in bench_x2), parameter-space FedAvg is also
/// provided: one model whose parameters are the (weighted) average of the
/// local models' parameters — valid only across identical architectures.

#include <string>
#include <vector>

#include "qens/common/status.h"
#include "qens/ml/sequential_model.h"
#include "qens/tensor/matrix.h"

namespace qens::fl {

/// The aggregation rules under study.
enum class AggregationKind {
  kModelAveraging,     ///< Eq. 6 — equal-weight prediction average.
  kWeightedAveraging,  ///< Eq. 7 — ranking-weighted prediction average.
  kFedAvgParameters,   ///< Extension — parameter-space weighted average.
};

const char* AggregationKindName(AggregationKind kind);
Result<AggregationKind> ParseAggregationKind(const std::string& name);

/// Equal-weight prediction average (Eq. 6). Fails when `models` is empty,
/// architectures/output widths are incompatible with `x`, or any Predict
/// fails.
Result<Matrix> AggregatePredictions(const std::vector<ml::SequentialModel>& models,
                                    const Matrix& x);

/// Ranking-weighted prediction average (Eq. 7). `weights` are the raw
/// rankings r_i; they are normalized internally to lambda_i (must be
/// non-negative with a positive sum; one weight per model).
Result<Matrix> AggregatePredictionsWeighted(
    const std::vector<ml::SequentialModel>& models,
    const std::vector<double>& weights, const Matrix& x);

/// Parameter-space weighted average into a single model. All models must
/// share one architecture. `weights` as in AggregatePredictionsWeighted;
/// pass equal weights for plain FedAvg.
Result<ml::SequentialModel> FedAvgParameters(
    const std::vector<ml::SequentialModel>& models,
    const std::vector<double>& weights);

/// \name Partial participation (fault tolerance)
/// Under failures only a subset of the engaged nodes returns a model. The
/// round's weights are renormalized over the survivors so the aggregate
/// stays a convex combination (sum of surviving lambda_i == 1).
/// @{

/// Renormalize `weights` over the survivor subset: non-survivors get 0,
/// survivors keep their relative proportions scaled to sum 1. When the
/// surviving weight mass is zero (e.g. all-zero rankings), survivors fall
/// back to equal weights. Fails when sizes mismatch, a weight is negative,
/// or no entry of `alive` is true.
Result<std::vector<double>> PartialWeights(const std::vector<double>& weights,
                                           const std::vector<bool>& alive);

/// Quorum predicate: a round with `survivors` of `planned` participants
/// meets a `min_quorum_frac` quorum when survivors >= ceil(frac * planned)
/// and at least one participant survived. frac is clamped into [0, 1].
bool MeetsQuorum(size_t survivors, size_t planned, double min_quorum_frac);

/// Prediction-space aggregation restricted to the survivors. Dead entries'
/// models are never evaluated.
Result<Matrix> AggregatePredictionsPartial(
    const std::vector<ml::SequentialModel>& models,
    const std::vector<double>& weights, const std::vector<bool>& alive,
    const Matrix& x);

/// Parameter-space FedAvg restricted to the survivors.
Result<ml::SequentialModel> FedAvgParametersPartial(
    const std::vector<ml::SequentialModel>& models,
    const std::vector<double>& weights, const std::vector<bool>& alive);

/// @}

/// A trained ensemble the leader keeps per query: the l local models plus
/// their rankings, able to answer with any aggregation rule.
class EnsembleModel {
 public:
  /// `weights` must align with `models` (raw rankings; needs a positive sum
  /// only when weighted/fedavg aggregation is requested).
  static Result<EnsembleModel> Create(std::vector<ml::SequentialModel> models,
                                      std::vector<double> weights);

  size_t size() const { return models_.size(); }
  const std::vector<ml::SequentialModel>& models() const { return models_; }
  const std::vector<double>& weights() const { return weights_; }

  /// Predict with the chosen rule.
  Result<Matrix> Predict(const Matrix& x, AggregationKind kind) const;

 private:
  EnsembleModel(std::vector<ml::SequentialModel> models,
                std::vector<double> weights)
      : models_(std::move(models)), weights_(std::move(weights)) {}

  std::vector<ml::SequentialModel> models_;
  std::vector<double> weights_;
};

}  // namespace qens::fl

#endif  // QENS_FL_AGGREGATION_H_
