#include "qens/fl/dynamic_fleet.h"

#include <cmath>
#include <utility>

#include "qens/common/rng.h"
#include "qens/common/string_util.h"
#include "qens/fl/leader.h"
#include "qens/fl/query_session.h"
#include "qens/obs/metrics.h"

namespace qens::fl {
namespace {

// Fork stream for drift events; chained Fork(stream) -> Fork(node) ->
// Fork(round) so every event is a pure function of (seed, node, round).
constexpr uint64_t kDriftStream = 0xd21f;

}  // namespace

DynamicFleet::DynamicFleet(std::shared_ptr<const Fleet> fleet,
                           size_t num_nodes, std::vector<double> span)
    : fleet_(std::move(fleet)),
      present_(num_nodes, 1),
      drifted_(num_nodes),
      stale_rounds_(num_nodes, 0),
      dirty_(num_nodes, 0),
      cum_offset_(num_nodes, std::vector<double>(span.size(), 0.0)),
      published_offset_(num_nodes, std::vector<double>(span.size(), 0.0)),
      span_(std::move(span)) {}

Result<DynamicFleet> DynamicFleet::Create(std::shared_ptr<const Fleet> fleet) {
  if (fleet == nullptr) {
    return Status::InvalidArgument("dynamic fleet: null fleet");
  }
  const DynamicFleetOptions& dyn = fleet->options.dynamic;
  if (dyn.drift.rate < 0.0 || dyn.drift.rate > 1.0) {
    return Status::InvalidArgument(StrFormat(
        "dynamic fleet: drift rate must be in [0, 1], got %g",
        dyn.drift.rate));
  }
  if (dyn.drift.feature_shift < 0.0) {
    return Status::InvalidArgument(
        "dynamic fleet: drift feature_shift must be >= 0");
  }
  if (dyn.refresh && !(dyn.refresh_threshold > 0.0)) {
    return Status::InvalidArgument(
        "dynamic fleet: refresh_threshold must be > 0");
  }

  const size_t num_nodes = fleet->environment.num_nodes();
  QENS_ASSIGN_OR_RETURN(query::HyperRectangle space,
                        fleet->environment.GlobalDataSpace());
  std::vector<double> span(space.dims(), 0.0);
  for (size_t d = 0; d < space.dims(); ++d) {
    const double s = space.dim(d).hi - space.dim(d).lo;
    span[d] = (std::isfinite(s) && s > 0.0) ? s : 0.0;
  }

  // Always run the plan's validation; keep the plan only when churn is on.
  QENS_ASSIGN_OR_RETURN(sim::ChurnPlan plan,
                        sim::ChurnPlan::Create(num_nodes, dyn.churn));
  DynamicFleet dynamic(std::move(fleet), num_nodes, std::move(span));
  if (dyn.churn.churn_rate > 0.0) dynamic.churn_.emplace(std::move(plan));
  return dynamic;
}

bool DynamicFleet::IsPresent(size_t node_id) const {
  return present_[node_id] != 0;
}

const sim::EdgeNode& DynamicFleet::node(size_t node_id) const {
  if (drifted_[node_id].has_value()) return *drifted_[node_id];
  return fleet_->environment.node(node_id);
}

Result<data::Dataset> DynamicFleet::QueryRegionTestData(
    const query::RangeQuery& query) const {
  QENS_ASSIGN_OR_RETURN(query::RangeQuery internal,
                        fleet_->InternalQuery(query));
  std::optional<data::Dataset> pooled;
  for (size_t i = 0; i < fleet_->test_shards.size(); ++i) {
    const data::Dataset& shard = fleet_->test_shards[i];
    std::optional<data::Dataset> shifted;
    if (drifted_[i].has_value()) {
      Matrix features = shard.features();
      const size_t rows = shard.NumSamples();
      for (size_t r = 0; r < rows; ++r) {
        for (size_t d = 0; d < cum_offset_[i].size(); ++d) {
          features(r, d) += cum_offset_[i][d];
        }
      }
      QENS_ASSIGN_OR_RETURN(
          shifted, data::Dataset::Create(std::move(features), shard.targets(),
                                         shard.feature_names(),
                                         shard.target_name()));
    }
    const data::Dataset& current = shifted.has_value() ? *shifted : shard;
    QENS_ASSIGN_OR_RETURN(std::vector<size_t> rows,
                          internal.MatchingRows(current.features()));
    if (rows.empty()) continue;
    QENS_ASSIGN_OR_RETURN(data::Dataset subset, current.SelectRows(rows));
    if (!pooled.has_value()) {
      pooled = std::move(subset);
    } else {
      QENS_ASSIGN_OR_RETURN(pooled.value(), pooled->Concat(subset));
    }
  }
  if (!pooled.has_value()) {
    return Status::NotFound("no test rows inside the query region");
  }
  return std::move(pooled.value());
}

Result<sim::EdgeNode*> DynamicFleet::MutableNode(size_t i) {
  if (!drifted_[i].has_value()) {
    // First drift event: materialize the session-private copy (data +
    // quantized state, both still matching the published digest).
    drifted_[i].emplace(fleet_->environment.node(i));
  }
  return &*drifted_[i];
}

Status DynamicFleet::ApplyDrift(size_t i, const std::vector<double>& offset) {
  QENS_ASSIGN_OR_RETURN(sim::EdgeNode * node, MutableNode(i));
  const data::Dataset& data = node->local_data();
  if (data.NumFeatures() != offset.size()) {
    return Status::Internal(StrFormat(
        "dynamic fleet: node %zu has %zu features, drift has %zu offsets",
        i, data.NumFeatures(), offset.size()));
  }
  Matrix features = data.features();
  const size_t rows = data.NumSamples();
  for (size_t r = 0; r < rows; ++r) {
    for (size_t d = 0; d < offset.size(); ++d) {
      features(r, d) += offset[d];
    }
  }
  Matrix targets = data.targets();
  QENS_ASSIGN_OR_RETURN(
      data::Dataset replaced,
      data::Dataset::Create(std::move(features), std::move(targets),
                            data.feature_names(), data.target_name()));
  QENS_RETURN_NOT_OK(node->ReplaceLocalData(std::move(replaced)));
  for (size_t d = 0; d < offset.size(); ++d) {
    cum_offset_[i][d] += offset[d];
  }
  return Status::OK();
}

Result<DynamicFleet::RoundStats> DynamicFleet::BeginRound(Leader* leader) {
  if (leader == nullptr) {
    return Status::InvalidArgument("dynamic fleet: BeginRound needs a leader");
  }
  const DynamicFleetOptions& dyn = fleet_->options.dynamic;
  const size_t round = round_++;
  const size_t num_nodes = present_.size();
  RoundStats stats;

  // Churn transitions: compare this round's scheduled presence with the
  // previous round's. Round 0 never transitions (plans start present).
  if (churn_.has_value()) {
    for (size_t i = 0; i < num_nodes; ++i) {
      const char now = churn_->IsPresent(i, round) ? 1 : 0;
      if (now == present_[i]) continue;
      present_[i] = now;
      if (now != 0) {
        ++stats.nodes_joined;
        obs::Count("federation.fleet.nodes_joined");
      } else {
        ++stats.nodes_left;
        obs::Count("federation.fleet.nodes_left");
      }
    }
  }

  // Drift events: data drifts on the device whether or not the node is
  // currently participating (an absent node comes back with drifted data).
  if (dyn.drift.rate > 0.0) {
    const Rng base(dyn.drift.seed);
    for (size_t i = 0; i < num_nodes; ++i) {
      Rng rng = base.Fork(kDriftStream).Fork(i).Fork(round);
      if (!rng.Bernoulli(dyn.drift.rate)) continue;
      std::vector<double> offset(span_.size(), 0.0);
      for (size_t d = 0; d < span_.size(); ++d) {
        offset[d] = rng.Uniform(-dyn.drift.feature_shift,
                                dyn.drift.feature_shift) *
                    span_[d];
      }
      QENS_RETURN_NOT_OK(ApplyDrift(i, offset));
      dirty_[i] = 1;
      obs::Count("federation.fleet.drift_events");
    }
  }

  // Age staleness: every round a node carries unpublished drift counts.
  for (size_t i = 0; i < num_nodes; ++i) {
    if (dirty_[i] != 0) ++stale_rounds_[i];
  }

  // Online cluster refresh: a PRESENT node whose accumulated unpublished
  // offset trips the detector re-quantizes its current data and publishes
  // the new digest. The detector is exact — constant per-dimension shifts
  // move the true mean by exactly the offset sum, so no data recompute is
  // needed. Absent nodes refresh after they rejoin.
  if (dyn.refresh) {
    for (size_t i = 0; i < num_nodes; ++i) {
      if (dirty_[i] == 0 || present_[i] == 0) continue;
      double worst = 0.0;
      for (size_t d = 0; d < span_.size(); ++d) {
        if (span_[d] <= 0.0) continue;
        const double rel =
            std::fabs(cum_offset_[i][d] - published_offset_[i][d]) / span_[d];
        if (rel > worst) worst = rel;
      }
      if (worst < dyn.refresh_threshold) continue;
      QENS_ASSIGN_OR_RETURN(sim::EdgeNode * node, MutableNode(i));
      QENS_RETURN_NOT_OK(
          node->Quantize(fleet_->options.environment.kmeans));
      QENS_ASSIGN_OR_RETURN(const selection::NodeProfile* profile,
                            node->profile());
      QENS_RETURN_NOT_OK(leader->PublishRefreshedProfile(*profile));
      published_offset_[i] = cum_offset_[i];
      dirty_[i] = 0;
      stale_rounds_[i] = 0;
      ++stats.refreshes;
      obs::Count("federation.fleet.refreshes");
    }
  }

  // Hand the leader every node's current staleness (no-ops when unchanged;
  // the record is kept even at staleness_weight 0, mirroring reliability).
  size_t stale_sum = 0;
  for (size_t i = 0; i < num_nodes; ++i) {
    leader->SetStaleRounds(fleet_->environment.node(i).id(),
                           stale_rounds_[i]);
    stale_sum += stale_rounds_[i];
  }
  stats.stale_rounds = stale_sum;
  stats.fleet_epoch = leader->fleet_epoch();
  return stats;
}

}  // namespace qens::fl
