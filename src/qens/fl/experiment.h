#ifndef QENS_FL_EXPERIMENT_H_
#define QENS_FL_EXPERIMENT_H_

/// \file experiment.h
/// High-level experiment harness shared by the bench binaries and examples:
/// build a federation from the synthetic multi-site air-quality data, issue
/// a [18]-style query workload, execute each query under the mechanisms the
/// paper compares (GT, Random, Averaging = ours + Eq. 6, Weighted = ours +
/// Eq. 7), and accumulate the statistics behind Tables I–II and Figs. 7–9.

#include <string>
#include <vector>

#include "qens/common/status.h"
#include "qens/data/air_quality_generator.h"
#include "qens/fl/federation.h"
#include "qens/query/workload_generator.h"
#include "qens/tensor/stats.h"

namespace qens::fl {

/// Full configuration of one experiment.
struct ExperimentConfig {
  data::AirQualityOptions data;          ///< The 10-node environment.
  FederationOptions federation;
  query::WorkloadOptions workload;       ///< The 200-query stream.
  uint64_t seed = 7;
};

/// One "mechanism" as compared in Fig. 7: a selection policy, whether the
/// data-selectivity step runs, and which aggregation answers the query.
struct Mechanism {
  std::string label;
  selection::PolicyKind policy = selection::PolicyKind::kQueryDriven;
  bool data_selectivity = false;
  AggregationKind aggregation = AggregationKind::kModelAveraging;
};

/// The paper's four Fig. 7 mechanisms: GT, Random, Averaging (ours, Eq. 6),
/// Weighted (ours, Eq. 7).
std::vector<Mechanism> Figure7Mechanisms();

/// Pull the loss matching `kind` out of an outcome.
double LossOf(const QueryOutcome& outcome, AggregationKind kind);

/// Accumulated per-mechanism statistics over a workload.
struct MechanismStats {
  std::string label;
  stats::RunningStats loss;            ///< Per-query aggregated-answer MSE.
  stats::RunningStats sim_time;        ///< Simulated train+comm seconds.
  stats::RunningStats wall_time;       ///< Measured seconds.
  stats::RunningStats data_fraction;   ///< samples_used / all-node samples.
  size_t queries_run = 0;
  size_t queries_skipped = 0;
};

/// One row per executed query (Figs. 8 and 9 plot these series).
struct QueryRecord {
  uint64_t query_id = 0;
  bool skipped = false;
  double loss = 0.0;
  double sim_time = 0.0;       ///< Training (total) + communication.
  double wall_seconds = 0.0;
  double data_fraction_all = 0.0;
  size_t samples_used = 0;
  size_t selected_nodes = 0;
};

/// Owns a federation plus a generated workload and runs mechanisms over it.
class ExperimentRunner {
 public:
  /// Generate the node datasets, build the federation, and generate the
  /// workload over the environment's global data space.
  static Result<ExperimentRunner> Create(const ExperimentConfig& config);

  Federation& federation() { return federation_; }
  const Federation& federation() const { return federation_; }
  const std::vector<query::RangeQuery>& queries() const { return queries_; }
  const ExperimentConfig& config() const { return config_; }

  /// Execute every workload query under `mechanism`, returning summary
  /// statistics (Fig. 7-style averages).
  Result<MechanismStats> RunMechanism(const Mechanism& mechanism);

  /// Execute every workload query under `mechanism`, returning the
  /// per-query series (Fig. 8/9-style lines). `limit` of 0 runs the full
  /// workload; otherwise only the first `limit` queries.
  Result<std::vector<QueryRecord>> RunPerQuery(const Mechanism& mechanism,
                                               size_t limit = 0);

  /// Per-round records accumulated across Run* calls. Empty unless the
  /// obs metrics registry was enabled while the queries ran (the
  /// federation only populates QueryOutcome::round_records then).
  const std::vector<obs::RoundRecord>& collected_round_records() const {
    return collected_round_records_;
  }
  void ClearCollectedRoundRecords() { collected_round_records_.clear(); }

 private:
  ExperimentRunner(Federation federation,
                   std::vector<query::RangeQuery> queries,
                   ExperimentConfig config)
      : federation_(std::move(federation)),
        queries_(std::move(queries)),
        config_(std::move(config)) {}

  Federation federation_;
  std::vector<query::RangeQuery> queries_;
  ExperimentConfig config_;
  std::vector<obs::RoundRecord> collected_round_records_;
};

/// Render a Fig. 7-style table ("mechanism | avg loss | avg time | avg
/// data%") for printing by the bench binaries.
std::string FormatMechanismTable(const std::vector<MechanismStats>& rows);

/// Serialize per-query records as CSV (header + one row per query) — the
/// raw series behind Figs. 8/9, for external plotting.
std::string FormatQueryRecordsCsv(const std::vector<QueryRecord>& records);

/// Write FormatQueryRecordsCsv output to `path`.
Status WriteQueryRecordsCsv(const std::vector<QueryRecord>& records,
                            const std::string& path);

}  // namespace qens::fl

#endif  // QENS_FL_EXPERIMENT_H_
