#ifndef QENS_FL_DYNAMIC_FLEET_H_
#define QENS_FL_DYNAMIC_FLEET_H_

/// \file dynamic_fleet.h
/// Per-session dynamic-fleet state: churn, drift, and online refresh.
///
/// `fl::Fleet` is immutable and shared; everything that *changes* about the
/// fleet during a session lives here, one instance per QuerySession (like
/// the fault injector and the quarantine ledger):
///
///   - **Churn** — a seeded sim::ChurnPlan decides per round which nodes
///     are present. A departed node that was selected simply fails its
///     round (the quorum-gated partial-aggregation path absorbs it) and
///     participates again when it rejoins.
///   - **Drift** — seeded per-(node, round) events add a constant
///     per-dimension feature offset to a session-private COPY of the
///     node's data (the shared Fleet is never touched). The node's
///     published digest — and its private cluster assignment — go stale.
///   - **Online cluster refresh** — when refresh is enabled, a present
///     node whose accumulated unpublished offset exceeds the detector
///     threshold re-runs k-means on its current data and publishes the new
///     summaries through Leader::PublishRefreshedProfile, bumping the
///     session's fleet epoch (which invalidates the ranking cache and
///     rebuilds the session's index — see docs/ROBUSTNESS.md).
///
/// Because a drift event shifts every row of a dimension by the same
/// constant, the node's true per-dimension mean moves by exactly the
/// accumulated offset — so the drift detector is EXACT without touching
/// the data: it compares `|cum_offset - published_offset| / span` per
/// dimension against the threshold.
///
/// Determinism: all state here advances only in BeginRound, which the
/// RoundEngine calls once per round on the driving thread before any
/// parallel work; every random draw is a pure function of (seed, node,
/// round). The whole trajectory is therefore bit-reproducible at every
/// worker count and across seed replays.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "qens/common/status.h"
#include "qens/fl/protocol.h"
#include "qens/sim/churn.h"
#include "qens/sim/edge_node.h"

namespace qens::fl {

struct Fleet;
class Leader;

/// Mutable dynamic-fleet state of one session.
class DynamicFleet {
 public:
  /// What one BeginRound did (feeds RoundRecord / QueryOutcome).
  struct RoundStats {
    uint64_t fleet_epoch = 0;  ///< Leader's epoch after this round's refreshes.
    size_t nodes_joined = 0;   ///< Nodes that rejoined at this round.
    size_t nodes_left = 0;     ///< Nodes that departed at this round.
    size_t refreshes = 0;      ///< Profiles refreshed this round.
    size_t stale_rounds = 0;   ///< Sum of per-node unpublished-drift ages.
  };

  /// Validates `fleet->options.dynamic`, draws the churn plan, and captures
  /// the per-dimension feature spans the drift magnitudes scale by.
  static Result<DynamicFleet> Create(std::shared_ptr<const Fleet> fleet);

  /// Advance one round: apply churn transitions, draw drift events, age
  /// staleness, and (when refresh is on) publish refreshed profiles for
  /// tripped present nodes through `leader`. Must be called exactly once
  /// per executed round, before any node work, on the driving thread.
  Result<RoundStats> BeginRound(Leader* leader);

  /// Node presence in the round BeginRound last started. All nodes are
  /// present before the first BeginRound.
  bool IsPresent(size_t node_id) const;

  /// The node to read training data from: the session's drifted copy when
  /// the node has drifted, else the shared fleet's original.
  const sim::EdgeNode& node(size_t node_id) const;

  /// Ground truth under drift: pooled held-out rows inside the query
  /// region, with each node's test rows shifted by that node's accumulated
  /// offset — a device's sensors drift the same way for every row they
  /// produce, so queries are answered against the fleet's *current*
  /// reality, not the regime it was deployed in. Nodes that never drifted
  /// go through the exact static pooling path (bit-identical to
  /// Fleet::QueryRegionTestData when no drift event has fired).
  Result<data::Dataset> QueryRegionTestData(
      const query::RangeQuery& query) const;

  /// Rounds BeginRound has executed.
  size_t rounds_started() const { return round_; }

  const std::optional<sim::ChurnPlan>& churn_plan() const { return churn_; }

 private:
  DynamicFleet(std::shared_ptr<const Fleet> fleet, size_t num_nodes,
               std::vector<double> span);

  /// Lazily materialize the session-private copy of node `i`.
  Result<sim::EdgeNode*> MutableNode(size_t i);

  /// Apply one drift event's offsets to node `i`'s data copy.
  Status ApplyDrift(size_t i, const std::vector<double>& offset);

  std::shared_ptr<const Fleet> fleet_;
  size_t round_ = 0;  ///< Rounds started.
  std::vector<char> present_;  ///< Presence in the current round.
  /// Session-private node copies, created on a node's first drift event.
  std::vector<std::optional<sim::EdgeNode>> drifted_;
  std::vector<size_t> stale_rounds_;  ///< Rounds of unpublished drift.
  std::vector<char> dirty_;  ///< Has unpublished drift.
  std::vector<std::vector<double>> cum_offset_;        ///< Per node, per dim.
  std::vector<std::vector<double>> published_offset_;  ///< At last refresh.
  std::vector<double> span_;  ///< Global per-dimension feature span.
  std::optional<sim::ChurnPlan> churn_;  ///< Unset when churn_rate == 0.
};

}  // namespace qens::fl

#endif  // QENS_FL_DYNAMIC_FLEET_H_
