#include "qens/fl/transport.h"

namespace qens::fl {

// Out-of-line to anchor the vtable in one translation unit.
Transport::~Transport() = default;

}  // namespace qens::fl
