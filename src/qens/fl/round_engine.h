#ifndef QENS_FL_ROUND_ENGINE_H_
#define QENS_FL_ROUND_ENGINE_H_

/// \file round_engine.h
/// The per-round protocol state machine of the federated loop, shared by
/// every query driver (Federation's sequential API and each concurrent
/// QuerySession): broadcast -> local train -> collect -> validate /
/// quarantine -> aggregate -> commit-or-degrade, repeated `rounds` times
/// over one fixed node selection.
///
/// The engine owns no state of its own — it operates on a
/// RoundEngineContext of borrowed pointers (environment, transport, leader,
/// fault/Byzantine state, thread-pool slot) so the same code path serves
/// the fault-free paper protocol, the fault-tolerant loop, and the
/// Byzantine-robust loop bit-for-bit identically to the historical
/// monolithic implementation.

#include <cstdint>
#include <memory>
#include <vector>

#include "qens/common/status.h"
#include "qens/common/thread_pool.h"
#include "qens/data/dataset.h"
#include "qens/fl/leader.h"
#include "qens/fl/participant.h"
#include "qens/fl/protocol.h"
#include "qens/fl/transport.h"

namespace qens::fl {

class DynamicFleet;

/// Everything one round set needs, borrowed from the owning session. All
/// pointers must outlive the engine. `injector`/`validator` are null when
/// the corresponding opt-in layer is off; `quarantine_until` is non-null
/// exactly when `validator` is.
struct RoundEngineContext {
  const sim::EdgeEnvironment* environment = nullptr;
  /// Channel every model-down / model-up transfer goes through.
  Transport* transport = nullptr;
  /// Ranking + reliability bookkeeping (RecordRoundResult).
  Leader* leader = nullptr;
  const FederationOptions* options = nullptr;
  /// Fault layer (null = off). The engine advances *fault_round once per
  /// executed round so crash schedules persist across queries.
  sim::FaultInjector* injector = nullptr;
  size_t* fault_round = nullptr;
  /// Byzantine layer (null = off). *byz_round advances once per round;
  /// quarantine_until maps node id -> first round it may rejoin.
  UpdateValidator* validator = nullptr;
  std::vector<size_t>* quarantine_until = nullptr;
  size_t* byz_round = nullptr;
  /// Dynamic-fleet layer (null = off). BeginRound is called once per
  /// executed round on the driving thread; absent nodes fail their round
  /// through the quorum-gated partial-aggregation path, and training reads
  /// each node through the session's drifted copy.
  DynamicFleet* dynamic = nullptr;
  /// Slot for the session's lazily-created training pool (created on the
  /// first parallel round, reused across rounds and queries).
  std::unique_ptr<common::ThreadPool>* pool = nullptr;
  /// Tags emitted RoundRecords with the owning session (0 = untagged, the
  /// sequential Federation API).
  uint64_t session_id = 0;
};

/// Drives `rounds` leader <-> participants exchanges over one node
/// selection and returns the surviving local models ready for final
/// aggregation.
class RoundEngine {
 public:
  explicit RoundEngine(const RoundEngineContext& ctx) : ctx_(ctx) {}

  /// The surviving state after the last round: the local models to
  /// ensemble (already graceful-degraded to the last committed global
  /// model when faults wiped out every survivor), their Eq. 7 weights, and
  /// the last committed global model (the robust clipping reference).
  /// `local_models` is empty only when the query is unanswerable.
  struct RoundSetResult {
    std::vector<ml::SequentialModel> local_models;
    std::vector<double> eq7_weights;
    ml::SequentialModel global;
  };

  /// Execute the round loop. `jobs` is the fixed per-query assignment,
  /// `global` the broadcast initial model (consumed), `holdout` the pooled
  /// query-region test rows (used only by a holdout-screening validator;
  /// may be null otherwise). `query_id`/`policy` label telemetry records.
  /// Fills the fault/Byzantine/time/data accounting fields of `outcome`
  /// exactly as the historical monolithic loop did.
  Result<RoundSetResult> Run(const std::vector<TrainJob>& jobs,
                             ml::SequentialModel global, size_t rounds,
                             size_t query_id, selection::PolicyKind policy,
                             const LocalTrainOptions& local_options,
                             size_t model_bytes, const data::Dataset* holdout,
                             QueryOutcome* outcome);

 private:
  RoundEngineContext ctx_;
};

}  // namespace qens::fl

#endif  // QENS_FL_ROUND_ENGINE_H_
