#include "qens/fl/update_validator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "qens/common/string_util.h"
#include "qens/ml/loss.h"
#include "qens/obs/metrics.h"
#include "qens/tensor/stats.h"
#include "qens/tensor/vector_ops.h"

namespace qens::fl {
namespace {

bool AllFinite(const std::vector<double>& values) {
  for (double v : values) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

/// Median over the entries of `values` selected by `use` (at least one).
double MaskedMedian(const std::vector<double>& values,
                    const std::vector<bool>& use) {
  std::vector<double> kept;
  kept.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    if (use[i]) kept.push_back(values[i]);
  }
  return stats::Quantile(std::move(kept), 0.5).value();
}

}  // namespace

const char* RejectReasonName(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone:
      return "accepted";
    case RejectReason::kNonFinite:
      return "non_finite";
    case RejectReason::kAbsNormBound:
      return "abs_norm";
    case RejectReason::kNormOutlier:
      return "norm_outlier";
    case RejectReason::kHoldoutLoss:
      return "holdout_loss";
  }
  return "accepted";
}

std::string ValidationReport::Summary() const {
  std::string out = StrFormat("accepted %zu/%zu", accepted, verdicts.size());
  if (rejected() == 0) return out;
  out += " (";
  bool first = true;
  const auto append = [&](const char* name, size_t count) {
    if (count == 0) return;
    if (!first) out += ", ";
    out += StrFormat("%s %zu", name, count);
    first = false;
  };
  append("non_finite", rejected_non_finite);
  append("abs_norm", rejected_abs_norm);
  append("norm_outlier", rejected_norm_outlier);
  append("holdout_loss", rejected_holdout);
  out += ")";
  return out;
}

Result<UpdateValidator> UpdateValidator::Create(
    const UpdateValidatorOptions& options) {
  if (options.max_update_norm < 0.0 ||
      !std::isfinite(options.max_update_norm)) {
    return Status::InvalidArgument(StrFormat(
        "update validator: max_update_norm must be finite and >= 0, got %g",
        options.max_update_norm));
  }
  if (options.norm_mad_k < 0.0 || !std::isfinite(options.norm_mad_k)) {
    return Status::InvalidArgument(StrFormat(
        "update validator: norm_mad_k must be finite and >= 0, got %g",
        options.norm_mad_k));
  }
  if (options.holdout_loss_factor < 0.0 ||
      !std::isfinite(options.holdout_loss_factor)) {
    return Status::InvalidArgument(StrFormat(
        "update validator: holdout_loss_factor must be finite and >= 0, "
        "got %g",
        options.holdout_loss_factor));
  }
  if (options.holdout_loss_factor > 0.0 && options.holdout_loss_factor < 1.0) {
    return Status::InvalidArgument(
        "update validator: holdout_loss_factor below 1 would reject "
        "better-than-median updates");
  }
  if (options.min_updates_for_stats < 2) {
    return Status::InvalidArgument(
        "update validator: min_updates_for_stats must be >= 2 (median-based "
        "tests are meaningless on fewer updates)");
  }
  return UpdateValidator(options);
}

Result<ValidationReport> UpdateValidator::Validate(
    const std::vector<ml::SequentialModel>& updates,
    const ml::SequentialModel& reference, const Matrix* holdout_x,
    const Matrix* holdout_y) const {
  const std::vector<double> ref = reference.GetParameters();
  if (!AllFinite(ref)) {
    return Status::InvalidArgument(
        "update validator: reference has non-finite parameters");
  }
  ValidationReport report;
  report.verdicts.resize(updates.size());

  // Pass 1: per-update checks (finiteness, absolute norm bound).
  std::vector<bool> alive(updates.size(), true);
  for (size_t i = 0; i < updates.size(); ++i) {
    UpdateVerdict& v = report.verdicts[i];
    if (!updates[i].SameArchitecture(reference)) {
      return Status::InvalidArgument(StrFormat(
          "update validator: update %zu architecture differs from the "
          "reference",
          i));
    }
    const std::vector<double> params = updates[i].GetParameters();
    if (!AllFinite(params)) {
      v.update_norm = std::numeric_limits<double>::quiet_NaN();
      if (options_.check_finite) {
        v.accepted = false;
        v.reason = RejectReason::kNonFinite;
        alive[i] = false;
        ++report.rejected_non_finite;
      }
      continue;
    }
    v.update_norm = vec::Norm2(vec::Sub(params, ref));
    if (options_.max_update_norm > 0.0 &&
        v.update_norm > options_.max_update_norm) {
      v.accepted = false;
      v.reason = RejectReason::kAbsNormBound;
      alive[i] = false;
      ++report.rejected_abs_norm;
    }
  }

  // Pass 2: relative norm bound — median/MAD outlier test over the updates
  // still standing. Scale-free: it adapts to whatever norm the round's
  // honest updates actually have.
  size_t standing = static_cast<size_t>(
      std::count(alive.begin(), alive.end(), true));
  if (options_.norm_mad_k > 0.0 &&
      standing >= options_.min_updates_for_stats) {
    // A NaN norm can only still be alive when check_finite is off; keep it
    // out of the order statistics either way.
    std::vector<double> norms(updates.size(), 0.0);
    std::vector<bool> measurable(updates.size(), false);
    for (size_t i = 0; i < updates.size(); ++i) {
      norms[i] = report.verdicts[i].update_norm;
      measurable[i] = alive[i] && std::isfinite(norms[i]);
    }
    const size_t measurable_count = static_cast<size_t>(
        std::count(measurable.begin(), measurable.end(), true));
    if (measurable_count >= options_.min_updates_for_stats) {
      const double median = MaskedMedian(norms, measurable);
      std::vector<double> deviations;
      deviations.reserve(measurable_count);
      for (size_t i = 0; i < updates.size(); ++i) {
        if (measurable[i]) deviations.push_back(std::fabs(norms[i] - median));
      }
      const double mad = stats::Quantile(std::move(deviations), 0.5).value();
      // Guard against a degenerate MAD (half the round at identical norms):
      // allow at least a small fraction of the median as spread.
      const double spread = std::max(mad, 0.01 * std::max(median, 1e-12));
      const double bound = median + options_.norm_mad_k * spread;
      for (size_t i = 0; i < updates.size(); ++i) {
        if (!measurable[i]) continue;
        if (norms[i] > bound) {
          report.verdicts[i].accepted = false;
          report.verdicts[i].reason = RejectReason::kNormOutlier;
          alive[i] = false;
          ++report.rejected_norm_outlier;
        }
      }
      standing =
          static_cast<size_t>(std::count(alive.begin(), alive.end(), true));
    }
  }

  // Pass 3: holdout-loss sanity check on the remaining candidates. The
  // bound is anchored to min(median standing update loss, reference model
  // loss): the median anchor is tight when the round has an honest
  // majority, while the reference anchor needs no cross-update statistics
  // at all — it keeps the check alive in small rounds (below
  // min_updates_for_stats) and in attacker-majority rounds, where any
  // median-based screen is corruptible.
  if (options_.holdout_loss_factor > 0.0 && holdout_x != nullptr &&
      holdout_y != nullptr && holdout_x->rows() > 0) {
    Matrix hx = *holdout_x;
    Matrix hy = *holdout_y;
    if (options_.holdout_max_rows > 0 &&
        hx.rows() > options_.holdout_max_rows) {
      std::vector<size_t> head(options_.holdout_max_rows);
      std::iota(head.begin(), head.end(), 0);
      QENS_ASSIGN_OR_RETURN(hx, holdout_x->SelectRows(head));
      QENS_ASSIGN_OR_RETURN(hy, holdout_y->SelectRows(head));
    }
    std::vector<double> losses(updates.size(), 0.0);
    for (size_t i = 0; i < updates.size(); ++i) {
      if (!alive[i]) continue;
      QENS_ASSIGN_OR_RETURN(Matrix pred, updates[i].Predict(hx));
      QENS_ASSIGN_OR_RETURN(double loss,
                            ml::ComputeLoss(ml::LossKind::kMse, pred, hy));
      losses[i] = loss;
      report.verdicts[i].holdout_loss = loss;
      if (!std::isfinite(loss)) {  // e.g. finite params overflowing Predict
        report.verdicts[i].accepted = false;
        report.verdicts[i].reason = RejectReason::kHoldoutLoss;
        alive[i] = false;
        ++report.rejected_holdout;
      }
    }
    standing =
        static_cast<size_t>(std::count(alive.begin(), alive.end(), true));
    QENS_ASSIGN_OR_RETURN(Matrix ref_pred, reference.Predict(hx));
    QENS_ASSIGN_OR_RETURN(
        double ref_loss, ml::ComputeLoss(ml::LossKind::kMse, ref_pred, hy));
    double anchor =
        std::isfinite(ref_loss) ? ref_loss
                                : std::numeric_limits<double>::infinity();
    if (standing >= options_.min_updates_for_stats) {
      anchor = std::min(anchor, MaskedMedian(losses, alive));
    }
    if (standing > 0 && std::isfinite(anchor)) {
      const double bound =
          options_.holdout_loss_factor * std::max(anchor, 1e-12);
      for (size_t i = 0; i < updates.size(); ++i) {
        if (!alive[i]) continue;
        if (losses[i] > bound) {
          report.verdicts[i].accepted = false;
          report.verdicts[i].reason = RejectReason::kHoldoutLoss;
          alive[i] = false;
          ++report.rejected_holdout;
        }
      }
    }
  }

  for (const UpdateVerdict& v : report.verdicts) {
    if (v.accepted) ++report.accepted;
  }
  obs::Count("validator.updates_screened", report.verdicts.size());
  obs::Count("validator.updates_rejected", report.rejected());
  return report;
}

}  // namespace qens::fl
