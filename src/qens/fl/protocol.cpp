#include "qens/fl/protocol.h"

namespace qens::fl {

double QueryOutcome::DataFractionOfSelected() const {
  return samples_selected > 0 ? static_cast<double>(samples_used) /
                                    static_cast<double>(samples_selected)
                              : 0.0;
}

double QueryOutcome::DataFractionOfAll() const {
  return samples_all_nodes > 0 ? static_cast<double>(samples_used) /
                                     static_cast<double>(samples_all_nodes)
                               : 0.0;
}

}  // namespace qens::fl
