#ifndef QENS_FL_QUERY_SERVER_H_
#define QENS_FL_QUERY_SERVER_H_

/// \file query_server.h
/// Concurrent query serving: a scheduler that runs multiple QuerySessions
/// over one shared (immutable) fleet, one worker thread per in-flight
/// session.
///
/// Determinism contract: serving is bit-identical at every worker count,
/// including fully sequential execution. Each session gets a fixed seed
/// derived from (base seed, session id) — independent of scheduling — plus
/// a private network for traffic accounting and its own leader/fault/
/// Byzantine/RNG state, so sessions share nothing mutable. Results are
/// collected in submission order. Only SessionResult::wall_seconds varies
/// across runs.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "qens/common/status.h"
#include "qens/fl/query_session.h"

namespace qens::fl {

/// One session's workload: a query stream executed under a single policy.
struct SessionSpec {
  std::vector<query::RangeQuery> queries;
  selection::PolicyKind policy = selection::PolicyKind::kQueryDriven;
  bool data_selectivity = true;
  size_t rounds = 1;
};

/// Server configuration.
struct ServingOptions {
  /// Concurrent session workers. 0 or 1 = run sessions sequentially
  /// inline (no pool); outcomes are identical either way.
  size_t num_workers = 0;
  /// Base seed the per-session seeds derive from. Unset = the fleet's
  /// FederationOptions::seed.
  std::optional<uint64_t> seed;
  /// Keep per-message logs in the session-private networks (the counters
  /// are always kept). Off by default: a serving workload only needs the
  /// totals, and the logs grow per transfer.
  bool record_session_messages = false;
};

/// Everything recorded about one served session.
struct SessionResult {
  uint64_t session_id = 0;  ///< 1-based; matches RoundRecord::session.
  /// How this session's stream ended. A failed session keeps the outcomes
  /// of the queries that completed before the error; the other sessions in
  /// the batch are unaffected (fault isolation between streams).
  Status status = Status::OK();
  std::vector<QueryOutcome> outcomes;  ///< One per query, in spec order.
  size_t queries_run = 0;
  size_t queries_skipped = 0;
  /// Session-private network totals (model/profile traffic of this stream).
  size_t comm_messages = 0;
  size_t comm_bytes = 0;
  double comm_seconds = 0.0;
  /// Measured wall time of this session's stream. The only field that is
  /// NOT deterministic across runs / worker counts.
  double wall_seconds = 0.0;
};

/// Schedules QuerySessions over a shared fleet.
class QueryServer {
 public:
  static Result<QueryServer> Create(std::shared_ptr<const Fleet> fleet,
                                    const ServingOptions& options = {});

  /// The fixed per-session seed derivation: independent SplitMix64 streams
  /// per session id, never dependent on scheduling order.
  static uint64_t SessionSeed(uint64_t base_seed, uint64_t session_id);

  /// Run one session per spec (session ids 1..specs.size(), in order) and
  /// return their results in spec order. With num_workers > 1 the sessions
  /// run concurrently; outcomes are bit-identical to sequential execution.
  /// One session failing does NOT fail the batch: every spec gets a
  /// SessionResult, and a failed session carries the error in its `status`
  /// (plus whatever queries completed before it). The call itself only
  /// errors on setup-level problems.
  Result<std::vector<SessionResult>> Serve(
      const std::vector<SessionSpec>& specs);

  const ServingOptions& options() const { return options_; }
  const Fleet& fleet() const { return *fleet_; }

 private:
  QueryServer(std::shared_ptr<const Fleet> fleet, ServingOptions options)
      : fleet_(std::move(fleet)), options_(options) {}

  /// Build and run the session for `specs[index]` start to finish. Errors
  /// land in the returned result's `status`, never escape it.
  SessionResult RunSession(const SessionSpec& spec, uint64_t session_id) const;

  std::shared_ptr<const Fleet> fleet_;
  ServingOptions options_;
};

}  // namespace qens::fl

#endif  // QENS_FL_QUERY_SERVER_H_
