#include "qens/selection/policies.h"

#include <algorithm>

#include "qens/common/string_util.h"

namespace qens::selection {

const char* PolicyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kQueryDriven:
      return "query-driven";
    case PolicyKind::kRandom:
      return "random";
    case PolicyKind::kAllNodes:
      return "all-nodes";
    case PolicyKind::kGameTheory:
      return "game-theory";
    case PolicyKind::kDataCentric:
      return "data-centric";
    case PolicyKind::kStochastic:
      return "stochastic";
  }
  return "unknown";
}

Result<PolicyKind> ParsePolicyKind(const std::string& name) {
  const std::string n = ToLower(Trim(name));
  if (n == "query-driven" || n == "querydriven" || n == "qens") {
    return PolicyKind::kQueryDriven;
  }
  if (n == "random") return PolicyKind::kRandom;
  if (n == "all-nodes" || n == "all") return PolicyKind::kAllNodes;
  if (n == "game-theory" || n == "gt") return PolicyKind::kGameTheory;
  if (n == "data-centric" || n == "datacentric") return PolicyKind::kDataCentric;
  if (n == "stochastic" || n == "fair") return PolicyKind::kStochastic;
  return Status::InvalidArgument("unknown policy: '" + name + "'");
}

Result<std::vector<NodeRank>> SelectTopL(const std::vector<NodeRank>& ranked,
                                         size_t l, bool drop_zero_rank) {
  if (l == 0) return Status::InvalidArgument("SelectTopL: l must be > 0");
  std::vector<NodeRank> out;
  out.reserve(std::min(l, ranked.size()));
  for (const auto& r : ranked) {
    if (out.size() >= l) break;
    if (drop_zero_rank && r.ranking <= 0.0) continue;
    out.push_back(r);
  }
  return out;
}

Result<std::vector<NodeRank>> SelectByThreshold(
    const std::vector<NodeRank>& ranked, double psi) {
  if (psi <= 0.0) {
    return Status::InvalidArgument("SelectByThreshold: psi must be > 0");
  }
  std::vector<NodeRank> out;
  for (const auto& r : ranked) {
    if (r.ranking >= psi) out.push_back(r);
  }
  return out;
}

Result<std::vector<NodeRank>> SelectQueryDriven(
    const std::vector<NodeRank>& ranked, const QueryDrivenOptions& options) {
  if (options.use_threshold) {
    return SelectByThreshold(ranked, options.psi);
  }
  return SelectTopL(ranked, options.top_l, options.drop_zero_rank);
}

Result<std::vector<size_t>> SelectRandom(size_t num_nodes, size_t l,
                                         Rng* rng) {
  if (l == 0) return Status::InvalidArgument("SelectRandom: l must be > 0");
  if (l > num_nodes) {
    return Status::InvalidArgument(
        StrFormat("SelectRandom: l=%zu > num_nodes=%zu", l, num_nodes));
  }
  std::vector<size_t> picked = rng->SampleWithoutReplacement(num_nodes, l);
  std::sort(picked.begin(), picked.end());
  return picked;
}

std::vector<size_t> SelectAllNodes(size_t num_nodes) {
  std::vector<size_t> ids(num_nodes);
  for (size_t i = 0; i < num_nodes; ++i) ids[i] = i;
  return ids;
}

}  // namespace qens::selection
