#ifndef QENS_SELECTION_DATA_CENTRIC_H_
#define QENS_SELECTION_DATA_CENTRIC_H_

/// \file data_centric.h
/// Data-centric client selection in the style of Saha et al. [8] ("data
/// quality score, computation score, and communication score to quantify
/// the capabilities of the participant device") — a QUERY-AGNOSTIC
/// baseline: nodes are scored once per environment, not per query, which
/// is exactly what the paper argues is insufficient for range-targeted
/// analytics.
///
///   score_i = w_data * data_quality_i + w_comp * compute_i + w_comm * comm_i
///
/// where data quality combines the node's (normalized) data volume with its
/// cluster diversity (non-empty clusters / K), compute is the node's
/// relative capacity, and comm is a normalized inverse link-latency proxy.

#include <cstddef>
#include <vector>

#include "qens/common/status.h"
#include "qens/selection/node_profile.h"

namespace qens::selection {

/// Weights of the three score components (non-negative, not all zero).
struct DataCentricOptions {
  double w_data = 0.5;
  double w_compute = 0.3;
  double w_comm = 0.2;
  /// Number of nodes to select (clamped to N).
  size_t top_l = 3;
};

/// One node's component scores and total.
struct DataCentricScore {
  size_t node_id = 0;
  double data_quality = 0.0;  ///< In [0, 1].
  double compute = 0.0;       ///< In [0, 1].
  double comm = 0.0;          ///< In [0, 1].
  double total = 0.0;
};

/// Score every node. `capacities` and `link_latencies` align with
/// `profiles` by index (latencies in seconds; smaller is better). Fails on
/// size mismatches, empty input, or degenerate weights.
Result<std::vector<DataCentricScore>> ScoreNodesDataCentric(
    const std::vector<NodeProfile>& profiles,
    const std::vector<double>& capacities,
    const std::vector<double>& link_latencies,
    const DataCentricOptions& options);

/// Score and select the top-l node ids (ascending id order).
Result<std::vector<size_t>> SelectDataCentric(
    const std::vector<NodeProfile>& profiles,
    const std::vector<double>& capacities,
    const std::vector<double>& link_latencies,
    const DataCentricOptions& options);

}  // namespace qens::selection

#endif  // QENS_SELECTION_DATA_CENTRIC_H_
