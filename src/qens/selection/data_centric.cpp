#include "qens/selection/data_centric.h"

#include <algorithm>

#include "qens/common/string_util.h"

namespace qens::selection {
namespace {

/// Normalize a vector of non-negative raw scores into [0, 1] by its max;
/// all-zero input stays all-zero.
void NormalizeByMax(std::vector<double>* values) {
  double max_v = 0.0;
  for (double v : *values) max_v = std::max(max_v, v);
  if (max_v <= 0.0) return;
  for (double& v : *values) v /= max_v;
}

}  // namespace

Result<std::vector<DataCentricScore>> ScoreNodesDataCentric(
    const std::vector<NodeProfile>& profiles,
    const std::vector<double>& capacities,
    const std::vector<double>& link_latencies,
    const DataCentricOptions& options) {
  if (profiles.empty()) {
    return Status::InvalidArgument("data-centric: no profiles");
  }
  if (capacities.size() != profiles.size() ||
      link_latencies.size() != profiles.size()) {
    return Status::InvalidArgument(StrFormat(
        "data-centric: %zu profiles, %zu capacities, %zu latencies",
        profiles.size(), capacities.size(), link_latencies.size()));
  }
  if (options.w_data < 0 || options.w_compute < 0 || options.w_comm < 0 ||
      options.w_data + options.w_compute + options.w_comm <= 0) {
    return Status::InvalidArgument(
        "data-centric: weights must be non-negative with a positive sum");
  }

  const size_t n = profiles.size();
  std::vector<double> volume(n), diversity(n), compute(n), comm(n);
  for (size_t i = 0; i < n; ++i) {
    volume[i] = static_cast<double>(profiles[i].total_samples);
    size_t non_empty = 0;
    for (const auto& cluster : profiles[i].clusters) {
      if (cluster.size > 0) ++non_empty;
    }
    diversity[i] =
        profiles[i].clusters.empty()
            ? 0.0
            : static_cast<double>(non_empty) /
                  static_cast<double>(profiles[i].clusters.size());
    if (capacities[i] <= 0.0) {
      return Status::InvalidArgument(
          StrFormat("data-centric: node %zu capacity must be > 0", i));
    }
    if (link_latencies[i] < 0.0) {
      return Status::InvalidArgument(
          StrFormat("data-centric: node %zu latency must be >= 0", i));
    }
    compute[i] = capacities[i];
    comm[i] = 1.0 / (1.0 + link_latencies[i]);
  }
  NormalizeByMax(&volume);
  NormalizeByMax(&compute);
  NormalizeByMax(&comm);

  std::vector<DataCentricScore> scores(n);
  for (size_t i = 0; i < n; ++i) {
    scores[i].node_id = profiles[i].node_id;
    scores[i].data_quality = 0.5 * volume[i] + 0.5 * diversity[i];
    scores[i].compute = compute[i];
    scores[i].comm = comm[i];
    scores[i].total = options.w_data * scores[i].data_quality +
                      options.w_compute * scores[i].compute +
                      options.w_comm * scores[i].comm;
  }
  return scores;
}

Result<std::vector<size_t>> SelectDataCentric(
    const std::vector<NodeProfile>& profiles,
    const std::vector<double>& capacities,
    const std::vector<double>& link_latencies,
    const DataCentricOptions& options) {
  if (options.top_l == 0) {
    return Status::InvalidArgument("data-centric: top_l must be > 0");
  }
  QENS_ASSIGN_OR_RETURN(
      std::vector<DataCentricScore> scores,
      ScoreNodesDataCentric(profiles, capacities, link_latencies, options));
  std::stable_sort(scores.begin(), scores.end(),
                   [](const DataCentricScore& a, const DataCentricScore& b) {
                     if (a.total != b.total) return a.total > b.total;
                     return a.node_id < b.node_id;
                   });
  std::vector<size_t> selected;
  for (size_t i = 0; i < scores.size() && i < options.top_l; ++i) {
    selected.push_back(scores[i].node_id);
  }
  std::sort(selected.begin(), selected.end());
  return selected;
}

}  // namespace qens::selection
