#include "qens/selection/cluster_index.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "qens/common/string_util.h"
#include "qens/query/overlap.h"

namespace qens::selection {
namespace {

/// The scan's exact sort key (selection/ranking.cpp): descending ranking,
/// ascending node id.
bool RankLess(const NodeRank& a, const NodeRank& b) {
  if (a.ranking != b.ranking) return a.ranking > b.ranking;
  return a.node_id < b.node_id;
}

bool BitEq(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

}  // namespace

void ClusterIndex::Scratch::Prepare(size_t num_entries) {
  if (entry_epoch.size() != num_entries) {
    entry_epoch.assign(num_entries, 0);
    entry_hits.assign(num_entries, 0);
    entry_last_dim.assign(num_entries, 0);
    epoch = 0;
  }
  ++epoch;  // uint64: never wraps in practice.
  touched.clear();
  candidates.clear();
}

Result<ClusterIndex> ClusterIndex::Build(
    const std::vector<NodeProfile>& profiles,
    const ClusterIndexOptions& options) {
  ClusterIndex index;
  index.num_nodes_ = profiles.size();
  index.bins_per_dim_ =
      std::clamp<size_t>(options.bins_per_dim, 1, size_t{1} << 20);
  index.epoch_ = options.epoch;
  index.node_ids_.reserve(profiles.size());
  index.node_cluster_counts_.reserve(profiles.size());

  // Pass 1: validate structure, assign entry ids in (node, cluster)
  // lexicographic order (RankNodesIndexed relies on this for the scan's
  // floating-point accumulation order).
  for (size_t i = 0; i < profiles.size(); ++i) {
    const NodeProfile& p = profiles[i];
    if (p.clusters.empty()) {
      return Status::InvalidArgument(
          StrFormat("ClusterIndex: node %zu has no clusters", p.node_id));
    }
    if (p.clusters.size() > std::numeric_limits<uint32_t>::max() ||
        i > std::numeric_limits<uint32_t>::max()) {
      return Status::InvalidArgument("ClusterIndex: fleet too large");
    }
    if (i > 0 && profiles[i - 1].node_id >= p.node_id) {
      index.ids_strictly_increasing_ = false;
    }
    index.node_ids_.push_back(p.node_id);
    index.node_cluster_counts_.push_back(
        static_cast<uint32_t>(p.clusters.size()));
    for (size_t k = 0; k < p.clusters.size(); ++k) {
      const clustering::ClusterSummary& c = p.clusters[k];
      if (c.size == 0) continue;  // Empty cluster: the scan never scores it.
      if (c.bounds.dims() == 0) {
        return Status::InvalidArgument(StrFormat(
            "ClusterIndex: node %zu cluster %zu has a zero-dimensional "
            "bounds box",
            p.node_id, k));
      }
      if (index.dims_ == 0) {
        index.dims_ = c.bounds.dims();
      } else if (c.bounds.dims() != index.dims_) {
        return Status::InvalidArgument(StrFormat(
            "ClusterIndex: node %zu cluster %zu has %zu dims, index has %zu",
            p.node_id, k, c.bounds.dims(), index.dims_));
      }
      if (!c.bounds.valid()) {
        return Status::InvalidArgument(StrFormat(
            "ClusterIndex: node %zu cluster %zu has an invalid bounds box "
            "(min > max)",
            p.node_id, k));
      }
      index.entry_node_.push_back(static_cast<uint32_t>(i));
      index.entry_cluster_.push_back(static_cast<uint32_t>(k));
    }
  }

  const size_t entries = index.entry_node_.size();
  if (entries == 0) return index;  // All clusters empty: nothing to grid.

  // The exact prune thresholds: hit_bound_[m] is precisely the double the
  // scan's `sum / dims` can round up to when only m dimensions intersect.
  index.hit_bound_.resize(index.dims_ + 1);
  for (size_t m = 0; m <= index.dims_; ++m) {
    index.hit_bound_[m] =
        static_cast<double>(m) / static_cast<double>(index.dims_);
  }

  auto bounds_of = [&](size_t e) -> const query::HyperRectangle& {
    return profiles[index.entry_node_[e]]
        .clusters[index.entry_cluster_[e]]
        .bounds;
  };

  // Pass 2: one uniform grid per dimension over the hull of all entries.
  index.grids_.resize(index.dims_);
  for (size_t d = 0; d < index.dims_; ++d) {
    DimGrid& g = index.grids_[d];
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (size_t e = 0; e < entries; ++e) {
      const query::Interval& iv = bounds_of(e).dim(d);
      lo = std::min(lo, iv.lo);
      hi = std::max(hi, iv.hi);
    }
    g.lo = lo;
    g.bins = index.bins_per_dim_;
    const double span = hi - lo;
    g.inv_width = (std::isfinite(span) && span > 0.0)
                      ? static_cast<double>(g.bins) / span
                      : 0.0;
    if (!std::isfinite(g.inv_width)) g.inv_width = 0.0;

    // CSR bucketing: a cluster occupies every bin its interval touches,
    // so "intervals intersect => bin ranges intersect" (BinOf is monotone).
    g.start.assign(g.bins + 1, 0);
    for (size_t e = 0; e < entries; ++e) {
      const query::Interval& iv = bounds_of(e).dim(d);
      const size_t b0 = index.BinOf(g, iv.lo);
      const size_t b1 = index.BinOf(g, iv.hi);
      for (size_t b = b0; b <= b1; ++b) ++g.start[b + 1];
    }
    for (size_t b = 0; b < g.bins; ++b) g.start[b + 1] += g.start[b];
    g.items.resize(g.start[g.bins]);
    std::vector<uint32_t> cursor(g.start.begin(), g.start.end() - 1);
    for (size_t e = 0; e < entries; ++e) {
      const query::Interval& iv = bounds_of(e).dim(d);
      const size_t b0 = index.BinOf(g, iv.lo);
      const size_t b1 = index.BinOf(g, iv.hi);
      for (size_t b = b0; b <= b1; ++b) {
        g.items[cursor[b]++] = static_cast<uint32_t>(e);
      }
    }
  }
  return index;
}

size_t ClusterIndex::BinOf(const DimGrid& grid, double x) const {
  const double t = (x - grid.lo) * grid.inv_width;
  if (!(t > 0.0)) return 0;  // Catches t <= 0 and NaN (inf hull arithmetic).
  if (t >= static_cast<double>(grid.bins)) return grid.bins - 1;
  const size_t b = static_cast<size_t>(t);
  return b < grid.bins ? b : grid.bins - 1;
}

Status ClusterIndex::ValidateQueryRegion(
    const query::HyperRectangle& region) const {
  // With zero indexed entries the scan never reaches ComputeOverlapRate,
  // so even a malformed query ranks (to all zeros). Mirror that.
  if (num_entries() == 0) return Status::OK();
  // Build guarantees every indexed cluster box has dims_ valid dimensions,
  // so the scan's first Eq. 2 failure depends only on the query. Same
  // checks, same order, same messages as query::ComputeOverlapBreakdown.
  if (region.dims() == 0) {
    return Status::InvalidArgument("overlap: zero-dimensional box");
  }
  if (region.dims() != dims_) {
    return Status::InvalidArgument(
        StrFormat("overlap: query has %zu dims, cluster has %zu",
                  region.dims(), dims_));
  }
  if (!region.valid()) {
    return Status::InvalidArgument("overlap: invalid box (min > max)");
  }
  return Status::OK();
}

void ClusterIndex::CollectCandidates(const query::HyperRectangle& region,
                                     double epsilon, Scratch* scratch) const {
  scratch->Prepare(num_entries());
  const uint64_t epoch = scratch->epoch;
  for (size_t d = 0; d < dims_; ++d) {
    const DimGrid& g = grids_[d];
    const size_t b0 = BinOf(g, region.dim(d).lo);
    const size_t b1 = BinOf(g, region.dim(d).hi);
    for (size_t b = b0; b <= b1; ++b) {
      for (uint32_t i = g.start[b]; i < g.start[b + 1]; ++i) {
        const uint32_t e = g.items[i];
        if (scratch->entry_epoch[e] != epoch) {
          scratch->entry_epoch[e] = epoch;
          scratch->entry_hits[e] = 1;
          scratch->entry_last_dim[e] = static_cast<uint32_t>(d);
          scratch->touched.push_back(e);
        } else if (scratch->entry_last_dim[e] != static_cast<uint32_t>(d)) {
          scratch->entry_last_dim[e] = static_cast<uint32_t>(d);
          ++scratch->entry_hits[e];
        }
      }
    }
  }
  // Keep exactly the clusters whose overlap could round up to epsilon.
  for (const uint32_t e : scratch->touched) {
    if (hit_bound_[scratch->entry_hits[e]] >= epsilon) {
      scratch->candidates.push_back(e);
    }
  }
  // Ascending entry id == (node, cluster) lexicographic == scan order.
  std::sort(scratch->candidates.begin(), scratch->candidates.end());
}

Result<std::vector<std::pair<size_t, size_t>>> ClusterIndex::Candidates(
    const query::HyperRectangle& region, double epsilon,
    Scratch* scratch) const {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("RankNode: epsilon must be > 0");
  }
  QENS_RETURN_NOT_OK(ValidateQueryRegion(region));
  Scratch local;
  Scratch* s = scratch != nullptr ? scratch : &local;
  std::vector<std::pair<size_t, size_t>> out;
  if (num_entries() == 0) return out;
  CollectCandidates(region, epsilon, s);
  out.reserve(s->candidates.size());
  for (const uint32_t e : s->candidates) {
    out.emplace_back(entry_node_[e], entry_cluster_[e]);
  }
  return out;
}

size_t ClusterIndex::GridBytes() const {
  size_t bytes = 0;
  for (const DimGrid& g : grids_) {
    bytes += g.start.capacity() * sizeof(uint32_t);
    bytes += g.items.capacity() * sizeof(uint32_t);
  }
  bytes += entry_node_.capacity() * sizeof(uint32_t);
  bytes += entry_cluster_.capacity() * sizeof(uint32_t);
  return bytes;
}

Result<std::vector<NodeRank>> RankNodesIndexed(
    const ClusterIndex& index, const std::vector<NodeProfile>& profiles,
    const query::RangeQuery& query, const RankingOptions& options,
    ClusterIndex::Scratch* scratch, IndexQueryStats* stats) {
  if (stats != nullptr) *stats = IndexQueryStats{};
  // Option validation: the scan's checks, verbatim (RankNode).
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument("RankNode: epsilon must be > 0");
  }
  if (options.reliability_weight < 0.0) {
    return Status::InvalidArgument("RankNode: reliability_weight must be >= 0");
  }
  if (options.staleness_weight < 0.0) {
    return Status::InvalidArgument("RankNode: staleness_weight must be >= 0");
  }
  if (profiles.size() != index.num_nodes()) {
    return Status::Internal(
        StrFormat("RankNodesIndexed: index built over %zu nodes, got %zu "
                  "profiles",
                  index.num_nodes(), profiles.size()));
  }
  if (profiles.empty()) return std::vector<NodeRank>{};

  QENS_RETURN_NOT_OK(index.ValidateQueryRegion(query.region));

  ClusterIndex::Scratch local;
  ClusterIndex::Scratch* s = scratch != nullptr ? scratch : &local;
  if (index.num_entries() > 0) {
    index.CollectCandidates(query.region, options.epsilon, s);
  } else {
    s->touched.clear();
    s->candidates.clear();
  }
  const std::vector<uint32_t>& cands = s->candidates;

  // Score candidate nodes exactly as the scan does (same per-cluster
  // ascending accumulation order, so every double matches bit for bit);
  // everything else becomes a zero rank without touching its geometry.
  std::vector<NodeRank> cand_ranks;
  std::vector<NodeRank> zero_ranks;
  std::vector<uint32_t> cand_pos;  // Profile positions (slow-path merge).
  std::vector<uint32_t> zero_pos;
  zero_ranks.reserve(profiles.size());
  size_t ci = 0;
  for (size_t i = 0; i < profiles.size(); ++i) {
    const NodeProfile& p = profiles[i];
    if (p.node_id != index.node_id_at(i) ||
        p.clusters.size() != index.node_cluster_count(i)) {
      return Status::Internal(StrFormat(
          "RankNodesIndexed: profile %zu does not match the index (stale "
          "index?)",
          i));
    }
    NodeRank rank;
    rank.node_id = p.node_id;
    rank.total_clusters = p.clusters.size();
    rank.total_samples = p.total_samples;
    rank.reliability = p.reliability.SuccessRate();
    rank.stale_rounds = p.stale_rounds;
    if (ci < cands.size() && index.entry_node(cands[ci]) == i) {
      rank.cluster_scores.resize(p.clusters.size());
      for (size_t k = 0; k < p.clusters.size(); ++k) {
        rank.cluster_scores[k].cluster_id = k;
      }
      while (ci < cands.size() && index.entry_node(cands[ci]) == i) {
        const size_t k = index.entry_cluster(cands[ci]);
        ++ci;
        const clustering::ClusterSummary& cluster = p.clusters[k];
        ClusterScore& score = rank.cluster_scores[k];
        QENS_ASSIGN_OR_RETURN(
            score.overlap,
            query::ComputeOverlapRate(query.region, cluster.bounds,
                                      options.overlap_mode));
        score.supporting = score.overlap >= options.epsilon;
        if (score.supporting) {
          rank.potential += score.overlap;  // Eq. 3, scan order.
          ++rank.supporting_clusters;
          rank.supporting_samples += cluster.size;
        }
      }
      // Eq. 4 and the reliability penalty, exactly as RankNode.
      rank.ranking = rank.potential *
                     static_cast<double>(rank.supporting_clusters) /
                     static_cast<double>(rank.total_clusters);
      if (options.reliability_weight > 0.0) {
        rank.ranking *= std::pow(rank.reliability, options.reliability_weight);
      }
      if (options.staleness_weight > 0.0) {
        rank.ranking *=
            std::pow(1.0 / (1.0 + static_cast<double>(rank.stale_rounds)),
                     options.staleness_weight);
      }
      cand_pos.push_back(static_cast<uint32_t>(i));
      cand_ranks.push_back(std::move(rank));
    } else {
      // Pruned wholesale: the scan's rank is provably all-zero (+0.0 on
      // both paths — every term is non-negative). cluster_scores stays
      // empty per the RankingsBitwiseEqual contract.
      zero_pos.push_back(static_cast<uint32_t>(i));
      zero_ranks.push_back(std::move(rank));
    }
  }

  if (stats != nullptr) {
    stats->touched_entries = s->touched.size();
    stats->candidate_clusters = cands.size();
    stats->candidate_nodes = cand_ranks.size();
    stats->pruned_clusters = index.num_entries() - cands.size();
  }

  if (index.node_ids_strictly_increasing()) {
    // Unique node ids make (ranking desc, id asc) a total order, so the
    // scan's stable_sort equals: sorted positive candidates, then the two
    // id-ascending zero lists merged by id.
    std::stable_sort(cand_ranks.begin(), cand_ranks.end(), RankLess);
    size_t zb = cand_ranks.size();
    while (zb > 0 && cand_ranks[zb - 1].ranking == 0.0) --zb;
    std::vector<NodeRank> out;
    out.reserve(profiles.size());
    for (size_t i = 0; i < zb; ++i) out.push_back(std::move(cand_ranks[i]));
    size_t a = zb;
    size_t z = 0;
    while (a < cand_ranks.size() && z < zero_ranks.size()) {
      if (cand_ranks[a].node_id < zero_ranks[z].node_id) {
        out.push_back(std::move(cand_ranks[a++]));
      } else {
        out.push_back(std::move(zero_ranks[z++]));
      }
    }
    while (a < cand_ranks.size()) out.push_back(std::move(cand_ranks[a++]));
    while (z < zero_ranks.size()) out.push_back(std::move(zero_ranks[z++]));
    return out;
  }

  // Duplicate or unsorted node ids: rebuild profile order and run the
  // scan's exact stable sort (stability matters for duplicate-id ties).
  std::vector<NodeRank> all;
  all.reserve(profiles.size());
  size_t a = 0;
  size_t z = 0;
  while (a < cand_ranks.size() || z < zero_ranks.size()) {
    if (z >= zero_ranks.size() ||
        (a < cand_ranks.size() && cand_pos[a] < zero_pos[z])) {
      all.push_back(std::move(cand_ranks[a++]));
    } else {
      all.push_back(std::move(zero_ranks[z++]));
    }
  }
  std::stable_sort(all.begin(), all.end(), RankLess);
  return all;
}

bool RankingsBitwiseEqual(const std::vector<NodeRank>& scan,
                          const std::vector<NodeRank>& indexed,
                          const RankingOptions& options, std::string* diff) {
  auto fail = [&](const std::string& message) {
    if (diff != nullptr) *diff = message;
    return false;
  };
  if (scan.size() != indexed.size()) {
    return fail(StrFormat("rank count: scan %zu vs indexed %zu", scan.size(),
                          indexed.size()));
  }
  for (size_t i = 0; i < scan.size(); ++i) {
    const NodeRank& sr = scan[i];
    const NodeRank& ir = indexed[i];
    if (sr.node_id != ir.node_id) {
      return fail(StrFormat("position %zu: scan node %zu vs indexed node %zu",
                            i, sr.node_id, ir.node_id));
    }
    if (!BitEq(sr.ranking, ir.ranking) || !BitEq(sr.potential, ir.potential) ||
        !BitEq(sr.reliability, ir.reliability)) {
      return fail(StrFormat(
          "node %zu: ranking/potential/reliability mismatch "
          "(%.17g/%.17g/%.17g vs %.17g/%.17g/%.17g)",
          sr.node_id, sr.ranking, sr.potential, sr.reliability, ir.ranking,
          ir.potential, ir.reliability));
    }
    if (sr.supporting_clusters != ir.supporting_clusters ||
        sr.total_clusters != ir.total_clusters ||
        sr.supporting_samples != ir.supporting_samples ||
        sr.total_samples != ir.total_samples ||
        sr.stale_rounds != ir.stale_rounds) {
      return fail(StrFormat("node %zu: count fields mismatch", sr.node_id));
    }
    if (ir.cluster_scores.empty() && !sr.cluster_scores.empty()) {
      // Node pruned wholesale: legal iff the scan found nothing supporting.
      if (sr.supporting_clusters != 0) {
        return fail(StrFormat(
            "node %zu: pruned (no cluster scores) but scan has %zu "
            "supporting clusters",
            sr.node_id, sr.supporting_clusters));
      }
      continue;
    }
    if (sr.cluster_scores.size() != ir.cluster_scores.size()) {
      return fail(StrFormat("node %zu: cluster score count %zu vs %zu",
                            sr.node_id, sr.cluster_scores.size(),
                            ir.cluster_scores.size()));
    }
    for (size_t k = 0; k < sr.cluster_scores.size(); ++k) {
      const ClusterScore& sc = sr.cluster_scores[k];
      const ClusterScore& ic = ir.cluster_scores[k];
      if (sc.cluster_id != ic.cluster_id || sc.supporting != ic.supporting) {
        return fail(StrFormat("node %zu cluster %zu: id/supporting mismatch",
                              sr.node_id, k));
      }
      if (BitEq(sc.overlap, ic.overlap)) continue;
      // Pruned cluster: indexed side may report 0.0 where the scan's exact
      // value provably sits below the support threshold.
      if (sc.supporting || !BitEq(ic.overlap, 0.0) ||
          !(sc.overlap < options.epsilon)) {
        return fail(StrFormat(
            "node %zu cluster %zu: overlap %.17g vs %.17g (epsilon %.17g)",
            sr.node_id, k, sc.overlap, ic.overlap, options.epsilon));
      }
    }
  }
  return true;
}

}  // namespace qens::selection
