#include "qens/selection/ranking_cache.h"

#include <algorithm>
#include <cmath>

namespace qens::selection {
namespace {

double SafeQuantum(double quantum) {
  if (!(quantum > 0.0) || !std::isfinite(quantum)) return 1.0;
  return quantum;
}

uint64_t QuantizeCoord(double x, double quantum) {
  if (std::isnan(x)) return 0x7ff8dead00000000ULL;  // Stable NaN sentinel.
  const double cell = std::floor(x / quantum);
  // Clamp into int64 range before the cast (avoids UB on huge/inf cells).
  constexpr double kLimit = 9.0e18;
  const double clamped = std::clamp(cell, -kLimit, kLimit);
  return static_cast<uint64_t>(static_cast<int64_t>(clamped));
}

}  // namespace

RankingCache::RankingCache(const RankingCacheOptions& options)
    : options_(options) {
  options_.quantum = SafeQuantum(options_.quantum);
}

uint64_t RankingCache::QuantizedKey(const query::HyperRectangle& region,
                                    double quantum) {
  quantum = SafeQuantum(quantum);
  uint64_t h = 0x9e3779b97f4a7c15ULL ^ static_cast<uint64_t>(region.dims());
  auto mix = [&h](uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
  };
  for (const query::Interval& iv : region.intervals()) {
    mix(QuantizeCoord(iv.lo, quantum));
    mix(QuantizeCoord(iv.hi, quantum));
  }
  return h;
}

const std::vector<NodeRank>* RankingCache::Lookup(
    const query::HyperRectangle& region) {
  const uint64_t key = QuantizedKey(region, options_.quantum);
  auto bucket = by_key_.find(key);
  if (bucket != by_key_.end()) {
    for (const EntryList::iterator& it : bucket->second) {
      // Exact-geometry verification: quantization only picked the bucket.
      if (it->region == region) {
        lru_.splice(lru_.begin(), lru_, it);  // Iterators stay valid.
        ++stats_.hits;
        return &it->ranks;
      }
    }
  }
  ++stats_.misses;
  return nullptr;
}

void RankingCache::Insert(const query::HyperRectangle& region,
                          std::vector<NodeRank> ranks) {
  if (options_.capacity == 0) return;
  const uint64_t key = QuantizedKey(region, options_.quantum);
  auto bucket = by_key_.find(key);
  if (bucket != by_key_.end()) {
    for (const EntryList::iterator& it : bucket->second) {
      if (it->region == region) {
        it->ranks = std::move(ranks);
        lru_.splice(lru_.begin(), lru_, it);
        return;
      }
    }
  }
  lru_.push_front(Entry{key, region, std::move(ranks)});
  by_key_[key].push_back(lru_.begin());
  ++stats_.insertions;
  while (lru_.size() > options_.capacity) {
    const EntryList::iterator last = std::prev(lru_.end());
    std::vector<EntryList::iterator>& vec = by_key_[last->key];
    vec.erase(std::find(vec.begin(), vec.end(), last));
    if (vec.empty()) by_key_.erase(last->key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void RankingCache::Clear() {
  lru_.clear();
  by_key_.clear();
}

void RankingCache::SetEpoch(uint64_t epoch) {
  if (epoch == epoch_) return;
  epoch_ = epoch;
  Clear();
}

}  // namespace qens::selection
