#ifndef QENS_SELECTION_STOCHASTIC_H_
#define QENS_SELECTION_STOCHASTIC_H_

/// \file stochastic.h
/// Stochastic client selection with fairness, in the style of Huang et al.
/// [12] ("each participant had the same chance to get involved during the
/// training process", for volatile clients): nodes are drawn at random with
/// probabilities that blend a per-query effectiveness score (the Eq. 4
/// ranking, when available) with a fairness boost for nodes that have
/// participated least. The selector is STATEFUL: it tracks participation
/// counts across the query stream.

#include <cstddef>
#include <vector>

#include "qens/common/rng.h"
#include "qens/common/status.h"
#include "qens/selection/ranking.h"

namespace qens::selection {

/// Blend between effectiveness and fairness.
struct StochasticOptions {
  /// Weight of the effectiveness (ranking) term in [0, 1]; the remainder
  /// weighs the fairness (inverse participation) term.
  double alpha = 0.5;
  /// Number of nodes to draw per query (clamped to N).
  size_t draw_l = 3;
  uint64_t seed = 1337;
};

/// Fair stochastic selector over a fixed node population.
class StochasticSelector {
 public:
  /// `num_nodes` must be > 0.
  StochasticSelector(size_t num_nodes, StochasticOptions options);

  size_t num_nodes() const { return counts_.size(); }
  const StochasticOptions& options() const { return options_; }

  /// Times each node has been selected so far.
  const std::vector<size_t>& participation_counts() const { return counts_; }

  /// Draw `options.draw_l` distinct nodes. `ranks` may be empty (pure
  /// fairness draw) or must cover every node id < num_nodes (e.g. the
  /// output of RankNodes); rankings are used as the effectiveness term.
  /// Selected ids are returned ascending and the participation counts are
  /// updated.
  Result<std::vector<size_t>> Select(const std::vector<NodeRank>& ranks);

  /// Forget all participation history.
  void Reset();

 private:
  StochasticOptions options_;
  std::vector<size_t> counts_;
  Rng rng_;
};

/// Jain's fairness index of the participation counts: 1 = perfectly even,
/// 1/N = maximally uneven. Fails on empty input; all-zero counts count as
/// perfectly fair.
Result<double> JainFairnessIndex(const std::vector<size_t>& counts);

}  // namespace qens::selection

#endif  // QENS_SELECTION_STOCHASTIC_H_
