#ifndef QENS_SELECTION_PROFILE_IO_H_
#define QENS_SELECTION_PROFILE_IO_H_

/// \file profile_io.h
/// Text wire codec for NodeProfile — the actual payload a node ships to the
/// leader in the selection protocol (Section III-C). Mirrors the model
/// codec in ml/model_io.h: line oriented, hex floats for exact round trips.
///
/// Format:
///   qens-profile v1
///   node <id> <name>
///   samples <total>
///   clusters <k>
///   cluster <size> <d> <centroid...> <min1> <max1> ... <mind> <maxd>   (k x)

#include <string>

#include "qens/common/status.h"
#include "qens/selection/node_profile.h"

namespace qens::selection {

/// Serialize a profile to the v1 text format.
std::string SerializeProfile(const NodeProfile& profile);

/// Parse a profile from the v1 text format. Fails on structural errors.
Result<NodeProfile> DeserializeProfile(const std::string& text);

/// Size in bytes of the serialized form (what the simulated network
/// carries for the profile upload).
size_t SerializedProfileBytes(const NodeProfile& profile);

}  // namespace qens::selection

#endif  // QENS_SELECTION_PROFILE_IO_H_
