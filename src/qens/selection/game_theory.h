#ifndef QENS_SELECTION_GAME_THEORY_H_
#define QENS_SELECTION_GAME_THEORY_H_

/// \file game_theory.h
/// The Game Theory (GT) baseline of Hammoud et al. [7] as described in
/// Section V-C: the leader first trains a model on its own local data and
/// broadcasts it; every node evaluates that model on its local data and
/// returns the loss; the leader then selects the nodes where the model
/// performed WORST (accuracy below a threshold — i.e. most-dissimilar data)
/// to make the global model more general.
///
/// The defining cost of GT — and the reason the paper reports it as the
/// slowest mechanism — is that it requires a full training round *before*
/// any selection can happen.

#include <cstdint>
#include <vector>

#include "qens/common/status.h"
#include "qens/data/dataset.h"
#include "qens/ml/model_factory.h"

namespace qens::selection {

/// GT configuration.
struct GameTheoryOptions {
  ml::ModelKind model = ml::ModelKind::kLinearRegression;
  /// Select nodes whose probe loss EXCEEDS `loss_quantile` of the per-node
  /// loss distribution (the "accuracy lower than a threshold" rule, made
  /// scale-free: GT targets the worst-performing fraction of nodes).
  double loss_quantile = 0.5;
  /// Cap on the number of selected nodes (0 = no cap).
  size_t max_selected = 0;
  uint64_t seed = 99;
};

/// Outcome of the GT pre-round.
struct GameTheorySelection {
  std::vector<size_t> selected;     ///< Node ids, ascending.
  std::vector<double> probe_loss;   ///< Per node, by node id.
  double threshold = 0.0;           ///< The resolved loss cutoff.
  size_t leader_samples_trained = 0;  ///< Cost of the mandatory pre-round.
  double pre_round_seconds = 0.0;     ///< Wall time of the pre-round.
};

/// Run the GT pre-round and selection. `leader_data` is the leader's local
/// dataset; `node_data` holds every participant's local dataset indexed by
/// node id. Fails when there are no nodes or the leader has no data.
Result<GameTheorySelection> RunGameTheorySelection(
    const data::Dataset& leader_data,
    const std::vector<data::Dataset>& node_data,
    const GameTheoryOptions& options);

}  // namespace qens::selection

#endif  // QENS_SELECTION_GAME_THEORY_H_
