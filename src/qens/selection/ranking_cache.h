#ifndef QENS_SELECTION_RANKING_CACHE_H_
#define QENS_SELECTION_RANKING_CACHE_H_

/// \file ranking_cache.h
/// Leader-side ranking memoization keyed on quantized query rectangles.
///
/// Real query workloads repeat regions (replayed dashboards, polling
/// clients, seed-replayed generators — pinned by
/// tests/query_workload_repetition_test.cpp), so the leader can serve a
/// repeated query's ranking without recomputing Eqs. 2-4.
///
/// Correctness never depends on quantization: the quantized coordinates
/// only pick the hash bucket, and every lookup verifies the stored query
/// rectangle against the requested one with exact (bitwise-value) interval
/// equality before serving. Two rectangles that quantize to the same key
/// but differ geometrically can therefore never alias — the lookup is a
/// miss (see tests/selection_ranking_cache_test.cpp). A hit returns the
/// exact vector that was inserted, so cached rankings are bitwise
/// identical to recomputed ones at every cache state.
///
/// Eviction is strict LRU over a deterministic recency list, so cache
/// behavior is reproducible run to run. The cache is not thread-safe; in
/// the serving engine each QuerySession's leader owns a private one.

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "qens/query/hyper_rectangle.h"
#include "qens/selection/ranking.h"

namespace qens::selection {

/// Cache construction knobs.
struct RankingCacheOptions {
  /// Maximum cached rankings; 0 disables insertion entirely.
  size_t capacity = 128;
  /// Quantization cell size for the hash key (<= 0 or non-finite falls
  /// back to 1.0). Coarser cells bucket more near-identical rectangles
  /// together; the exact-match check keeps any choice correct.
  double quantum = 1e-3;
};

/// Exact-match LRU cache from query rectangle to ranked node list.
class RankingCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
  };

  explicit RankingCache(const RankingCacheOptions& options = {});

  /// The cached ranking for exactly `region`, bumping its recency, or
  /// nullptr on miss. The pointer stays valid until the next non-const
  /// call on this cache.
  const std::vector<NodeRank>* Lookup(const query::HyperRectangle& region);

  /// Cache `ranks` for exactly `region` (replaces an existing exact-match
  /// entry), then evicts least-recently-used entries down to capacity.
  void Insert(const query::HyperRectangle& region,
              std::vector<NodeRank> ranks);

  /// Drop every entry (stats survive). Called whenever the profiles a
  /// ranking depends on change (e.g. leader reliability bookkeeping).
  void Clear();

  /// Bind the cache to a fleet epoch: when `epoch` differs from the last
  /// bound value, every entry is dropped (stats survive) — cached rankings
  /// were computed over the previous geometry and must not be served after
  /// an online cluster refresh. Idempotent for an unchanged epoch.
  void SetEpoch(uint64_t epoch);

  /// The fleet epoch the current contents are valid for.
  uint64_t epoch() const { return epoch_; }

  size_t size() const { return lru_.size(); }
  size_t capacity() const { return options_.capacity; }
  const Stats& stats() const { return stats_; }

  /// The hash key: each bound maps to floor(x / quantum) and the per-dim
  /// cells are mixed. Exposed so tests can construct deliberate key
  /// collisions (the aliasing regression).
  static uint64_t QuantizedKey(const query::HyperRectangle& region,
                               double quantum);

 private:
  struct Entry {
    uint64_t key = 0;
    query::HyperRectangle region;
    std::vector<NodeRank> ranks;
  };
  using EntryList = std::list<Entry>;

  RankingCacheOptions options_;
  uint64_t epoch_ = 0;
  EntryList lru_;  ///< Front = most recently used.
  std::unordered_map<uint64_t, std::vector<EntryList::iterator>> by_key_;
  Stats stats_;
};

}  // namespace qens::selection

#endif  // QENS_SELECTION_RANKING_CACHE_H_
