#include "qens/selection/game_theory.h"

#include <algorithm>

#include "qens/common/rng.h"
#include "qens/common/stopwatch.h"
#include "qens/common/string_util.h"
#include "qens/ml/loss.h"
#include "qens/tensor/stats.h"

namespace qens::selection {

Result<GameTheorySelection> RunGameTheorySelection(
    const data::Dataset& leader_data,
    const std::vector<data::Dataset>& node_data,
    const GameTheoryOptions& options) {
  if (node_data.empty()) {
    return Status::InvalidArgument("GT: no participant nodes");
  }
  if (leader_data.empty()) {
    return Status::InvalidArgument("GT: leader has no local data");
  }
  if (options.loss_quantile < 0.0 || options.loss_quantile >= 1.0) {
    return Status::InvalidArgument("GT: loss_quantile must be in [0, 1)");
  }

  Stopwatch watch;
  GameTheorySelection out;

  // Pre-round: the leader trains a probe model on its OWN data only.
  Rng rng(options.seed);
  QENS_ASSIGN_OR_RETURN(
      ml::SequentialModel probe,
      ml::BuildModel(options.model, leader_data.NumFeatures(), &rng));
  QENS_ASSIGN_OR_RETURN(std::unique_ptr<ml::Trainer> trainer,
                        ml::BuildTrainer(options.model, options.seed));
  QENS_ASSIGN_OR_RETURN(
      ml::TrainReport report,
      trainer->Fit(&probe, leader_data.features(), leader_data.targets()));
  out.leader_samples_trained = report.samples_seen;

  // Broadcast + local evaluation: each node scores the probe on its data.
  out.probe_loss.resize(node_data.size());
  for (size_t i = 0; i < node_data.size(); ++i) {
    const auto& local = node_data[i];
    if (local.empty()) {
      return Status::InvalidArgument(
          StrFormat("GT: node %zu has no local data", i));
    }
    QENS_ASSIGN_OR_RETURN(Matrix pred, probe.Predict(local.features()));
    QENS_ASSIGN_OR_RETURN(
        out.probe_loss[i],
        ml::ComputeLoss(ml::LossKind::kMse, pred, local.targets()));
  }

  // Threshold: the chosen quantile of per-node losses; nodes strictly above
  // it (worst-performing = most-dissimilar data) are selected.
  QENS_ASSIGN_OR_RETURN(out.threshold,
                        stats::Quantile(out.probe_loss,
                                        options.loss_quantile));
  std::vector<std::pair<double, size_t>> order;
  for (size_t i = 0; i < out.probe_loss.size(); ++i) {
    if (out.probe_loss[i] > out.threshold) {
      order.emplace_back(out.probe_loss[i], i);
    }
  }
  // Highest-loss first when capping.
  std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  if (options.max_selected > 0 && order.size() > options.max_selected) {
    order.resize(options.max_selected);
  }
  // Fallback: a degenerate loss distribution (all equal) selects nothing;
  // GT then falls back to the single worst node so learning can proceed.
  if (order.empty()) {
    size_t worst = 0;
    for (size_t i = 1; i < out.probe_loss.size(); ++i) {
      if (out.probe_loss[i] > out.probe_loss[worst]) worst = i;
    }
    order.emplace_back(out.probe_loss[worst], worst);
  }
  out.selected.reserve(order.size());
  for (const auto& [loss, id] : order) out.selected.push_back(id);
  std::sort(out.selected.begin(), out.selected.end());

  out.pre_round_seconds = watch.ElapsedSeconds();
  return out;
}

}  // namespace qens::selection
