#include "qens/selection/node_profile.h"

namespace qens::selection {

double ReliabilityStats::SuccessRate() const {
  if (rounds_engaged == 0) return 1.0;
  return static_cast<double>(rounds_completed) /
         static_cast<double>(rounds_engaged);
}

size_t NodeProfile::WireBytes() const {
  size_t bytes = sizeof(uint64_t) * 2;  // node id + cluster count.
  for (const auto& c : clusters) bytes += c.WireBytes();
  return bytes;
}

Result<NodeProfile> BuildNodeProfile(
    size_t node_id, const std::string& name, const data::Dataset& local_data,
    const clustering::KMeansOptions& kmeans_options) {
  QENS_ASSIGN_OR_RETURN(QuantizedNode q,
                        QuantizeNode(node_id, name, local_data,
                                     kmeans_options));
  return std::move(q.profile);
}

Result<QuantizedNode> QuantizeNode(
    size_t node_id, const std::string& name, const data::Dataset& local_data,
    const clustering::KMeansOptions& kmeans_options) {
  if (local_data.empty()) {
    return Status::InvalidArgument("QuantizeNode: node has no local data");
  }
  clustering::KMeans kmeans(kmeans_options);
  QENS_ASSIGN_OR_RETURN(clustering::KMeansResult fit,
                        kmeans.Fit(local_data.features()));
  QENS_ASSIGN_OR_RETURN(
      std::vector<clustering::ClusterSummary> summaries,
      clustering::SummarizeClusters(local_data.features(), fit.assignment,
                                    kmeans_options.k));
  QuantizedNode out;
  out.profile.node_id = node_id;
  out.profile.name = name;
  out.profile.clusters = std::move(summaries);
  out.profile.total_samples = local_data.NumSamples();
  out.assignment = std::move(fit.assignment);
  return out;
}

std::vector<size_t> QuantizedNode::RowsOfCluster(size_t cluster_id) const {
  std::vector<size_t> rows;
  for (size_t r = 0; r < assignment.size(); ++r) {
    if (assignment[r] == cluster_id) rows.push_back(r);
  }
  return rows;
}

std::vector<size_t> QuantizedNode::RowsOfClusters(
    const std::vector<size_t>& cluster_ids) const {
  std::vector<bool> wanted;
  for (size_t id : cluster_ids) {
    if (id >= wanted.size()) wanted.resize(id + 1, false);
    wanted[id] = true;
  }
  std::vector<size_t> rows;
  for (size_t r = 0; r < assignment.size(); ++r) {
    const size_t a = assignment[r];
    if (a < wanted.size() && wanted[a]) rows.push_back(r);
  }
  return rows;
}

}  // namespace qens::selection
