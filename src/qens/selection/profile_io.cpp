#include "qens/selection/profile_io.h"

#include <cstdio>
#include <sstream>

#include "qens/common/string_util.h"

namespace qens::selection {
namespace {

constexpr char kMagic[] = "qens-profile v1";

void AppendHex(std::ostringstream* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  *out << buf;
}

}  // namespace

std::string SerializeProfile(const NodeProfile& profile) {
  std::ostringstream out;
  out << kMagic << "\n";
  out << "node " << profile.node_id << " "
      << (profile.name.empty() ? "-" : profile.name) << "\n";
  out << "samples " << profile.total_samples << "\n";
  out << "clusters " << profile.clusters.size() << "\n";
  for (const auto& cluster : profile.clusters) {
    out << "cluster " << cluster.size << " " << cluster.dims();
    for (double c : cluster.centroid) {
      out << " ";
      AppendHex(&out, c);
    }
    for (const auto& iv : cluster.bounds.intervals()) {
      out << " ";
      AppendHex(&out, iv.lo);
      out << " ";
      AppendHex(&out, iv.hi);
    }
    out << "\n";
  }
  return out.str();
}

Result<NodeProfile> DeserializeProfile(const std::string& text) {
  std::istringstream in(text);
  std::string line;

  auto next_line = [&](std::string* out) -> bool {
    while (std::getline(in, line)) {
      std::string t = Trim(line);
      if (t.empty() || t[0] == '#') continue;
      *out = t;
      return true;
    }
    return false;
  };

  std::string cur;
  if (!next_line(&cur) || cur != kMagic) {
    return Status::InvalidArgument("profile parse: missing magic header");
  }
  if (!next_line(&cur) || !StartsWith(cur, "node ")) {
    return Status::InvalidArgument("profile parse: missing 'node' line");
  }
  NodeProfile profile;
  {
    const std::vector<std::string> parts = Split(cur, ' ');
    if (parts.size() != 3) {
      return Status::InvalidArgument("profile parse: malformed node line");
    }
    QENS_ASSIGN_OR_RETURN(int64_t id, ParseInt(parts[1]));
    if (id < 0) return Status::InvalidArgument("profile parse: negative id");
    profile.node_id = static_cast<size_t>(id);
    profile.name = parts[2] == "-" ? "" : parts[2];
  }
  if (!next_line(&cur) || !StartsWith(cur, "samples ")) {
    return Status::InvalidArgument("profile parse: missing 'samples' line");
  }
  QENS_ASSIGN_OR_RETURN(int64_t samples, ParseInt(cur.substr(8)));
  if (samples < 0) {
    return Status::InvalidArgument("profile parse: negative sample count");
  }
  profile.total_samples = static_cast<size_t>(samples);

  if (!next_line(&cur) || !StartsWith(cur, "clusters ")) {
    return Status::InvalidArgument("profile parse: missing 'clusters' line");
  }
  QENS_ASSIGN_OR_RETURN(int64_t n_clusters, ParseInt(cur.substr(9)));
  if (n_clusters < 0 || n_clusters > 1'000'000) {
    return Status::InvalidArgument(
        "profile parse: unreasonable cluster count");
  }

  for (int64_t c = 0; c < n_clusters; ++c) {
    if (!next_line(&cur) || !StartsWith(cur, "cluster ")) {
      return Status::InvalidArgument("profile parse: missing 'cluster' line");
    }
    const std::vector<std::string> parts = Split(cur, ' ');
    if (parts.size() < 3) {
      return Status::InvalidArgument("profile parse: malformed cluster line");
    }
    QENS_ASSIGN_OR_RETURN(int64_t size, ParseInt(parts[1]));
    QENS_ASSIGN_OR_RETURN(int64_t dims, ParseInt(parts[2]));
    if (size < 0 || dims < 0) {
      return Status::InvalidArgument("profile parse: negative size/dims");
    }
    const size_t d = static_cast<size_t>(dims);
    // centroid (d values) + bounds (2d values).
    if (parts.size() != 3 + d + 2 * d) {
      return Status::InvalidArgument(
          StrFormat("profile parse: cluster line has %zu fields, expected "
                    "%zu for d=%zu",
                    parts.size(), 3 + 3 * d, d));
    }
    clustering::ClusterSummary cluster;
    cluster.size = static_cast<size_t>(size);
    cluster.centroid.resize(d);
    for (size_t i = 0; i < d; ++i) {
      QENS_ASSIGN_OR_RETURN(cluster.centroid[i], ParseDouble(parts[3 + i]));
    }
    std::vector<double> flat(2 * d);
    for (size_t i = 0; i < 2 * d; ++i) {
      QENS_ASSIGN_OR_RETURN(flat[i], ParseDouble(parts[3 + d + i]));
    }
    if (d > 0) {
      QENS_ASSIGN_OR_RETURN(cluster.bounds,
                            query::HyperRectangle::FromFlatBounds(flat));
    }
    profile.clusters.push_back(std::move(cluster));
  }
  return profile;
}

size_t SerializedProfileBytes(const NodeProfile& profile) {
  return SerializeProfile(profile).size();
}

}  // namespace qens::selection
