#ifndef QENS_SELECTION_POLICIES_H_
#define QENS_SELECTION_POLICIES_H_

/// \file policies.h
/// Node selection policies compared in the paper's evaluation (Section V-C):
///   - QueryDriven (ours): top-l by ranking, or all nodes with r_i >= psi
///     (Eq. 5);
///   - Random: l nodes uniformly at random (the [6] baseline);
///   - AllNodes: every node, full local data;
///   - GameTheory: see game_theory.h (requires a training pre-round).

#include <cstdint>
#include <string>
#include <vector>

#include "qens/common/rng.h"
#include "qens/common/status.h"
#include "qens/selection/ranking.h"

namespace qens::selection {

/// The selection strategies under comparison.
enum class PolicyKind {
  kQueryDriven,  ///< The paper's mechanism (Sections III-C, IV).
  kRandom,       ///< Uniform choice of l nodes [6].
  kAllNodes,     ///< Engage every node on its full data.
  kGameTheory,   ///< Pre-round probing selection [7].
  kDataCentric,  ///< Query-agnostic device scoring [8] (data_centric.h).
  kStochastic,   ///< Fair stochastic selection [12] (stochastic.h).
};

const char* PolicyKindName(PolicyKind kind);
Result<PolicyKind> ParsePolicyKind(const std::string& name);

/// How the query-driven policy cuts the ranked list.
struct QueryDrivenOptions {
  /// Select the top-l ranked nodes when use_threshold == false.
  size_t top_l = 3;
  /// Select N'(q) = { n_i : r_i >= psi } when use_threshold == true (Eq. 5).
  bool use_threshold = false;
  double psi = 0.5;
  /// Nodes with zero ranking never participate, even inside the top-l cut
  /// (no supporting clusters means no data to train on).
  bool drop_zero_rank = true;
};

/// Select from a DESC-sorted rank list (as produced by RankNodes) by top-l.
/// Fails if l == 0.
Result<std::vector<NodeRank>> SelectTopL(const std::vector<NodeRank>& ranked,
                                         size_t l,
                                         bool drop_zero_rank = true);

/// Select N'(q) per Eq. 5. Fails if psi <= 0.
Result<std::vector<NodeRank>> SelectByThreshold(
    const std::vector<NodeRank>& ranked, double psi);

/// Apply a QueryDrivenOptions cut to the ranked list.
Result<std::vector<NodeRank>> SelectQueryDriven(
    const std::vector<NodeRank>& ranked, const QueryDrivenOptions& options);

/// Uniformly select l node ids out of [0, num_nodes). Fails when l == 0 or
/// l > num_nodes. Deterministic in *rng.
Result<std::vector<size_t>> SelectRandom(size_t num_nodes, size_t l, Rng* rng);

/// All node ids [0, num_nodes).
std::vector<size_t> SelectAllNodes(size_t num_nodes);

}  // namespace qens::selection

#endif  // QENS_SELECTION_POLICIES_H_
