#ifndef QENS_SELECTION_NODE_PROFILE_H_
#define QENS_SELECTION_NODE_PROFILE_H_

/// \file node_profile.h
/// The per-node metadata the leader ranks against a query: the node id and
/// the node's K cluster digests. This is everything a node publishes —
/// O(1)-sized w.r.t. its data (Section III-C) — so the leader never sees raw
/// samples (the paper's privacy constraint).

#include <cstdint>
#include <string>
#include <vector>

#include "qens/clustering/cluster_summary.h"
#include "qens/clustering/kmeans.h"
#include "qens/common/status.h"
#include "qens/data/dataset.h"

namespace qens::selection {

/// Leader-side observed reliability of a node, accumulated across rounds
/// by whoever coordinates training. NOT part of the shipped digest (no
/// wire-format change): the leader learns it by watching who answers.
struct ReliabilityStats {
  size_t rounds_engaged = 0;    ///< Times the node was selected for a round.
  size_t rounds_completed = 0;  ///< Returned a model within the deadline.
  size_t failures = 0;          ///< Crashed / offline / all sends lost.
  size_t deadline_misses = 0;   ///< Straggled past the round deadline.
  size_t rejections = 0;        ///< Update rejected by the leader's validator.

  /// Completed / engaged; 1.0 for a never-engaged (unobserved) node so
  /// unknown nodes are not penalized. Rejections count as engaged but not
  /// completed, so repeat offenders sink in the reliability ranking.
  double SuccessRate() const;

  void RecordCompleted() { ++rounds_engaged; ++rounds_completed; }
  void RecordFailure() { ++rounds_engaged; ++failures; }
  void RecordDeadlineMiss() { ++rounds_engaged; ++deadline_misses; }
  void RecordRejected() { ++rounds_engaged; ++rejections; }
};

/// A node's published digest: id + cluster summaries.
struct NodeProfile {
  size_t node_id = 0;
  std::string name;
  std::vector<clustering::ClusterSummary> clusters;
  size_t total_samples = 0;

  /// Observed failure/straggle history (leader-side, never serialized).
  ReliabilityStats reliability;

  /// Rounds since the node's local data started drifting away from this
  /// digest without a refresh (leader-side, never serialized; maintained by
  /// the dynamic-fleet layer, 0 in static fleets). Feeds the opt-in
  /// staleness discount in RankingOptions::staleness_weight.
  size_t stale_rounds = 0;

  size_t num_clusters() const { return clusters.size(); }

  /// Bytes the node ships to the leader for ranking (all summaries).
  size_t WireBytes() const;
};

/// Run the node-local quantization step (Eq. 1) and package the result as
/// the profile the node would ship to the leader. K and the k-means seed
/// come from `kmeans_options`.
Result<NodeProfile> BuildNodeProfile(size_t node_id, const std::string& name,
                                     const data::Dataset& local_data,
                                     const clustering::KMeansOptions&
                                         kmeans_options);

/// Profile plus the private cluster membership (kept node-side; used by the
/// data-selectivity mechanism to train only on supporting clusters).
struct QuantizedNode {
  NodeProfile profile;
  std::vector<size_t> assignment;  ///< Row -> cluster id (node-private).

  /// Row indices belonging to any of `cluster_ids`.
  std::vector<size_t> RowsOfClusters(
      const std::vector<size_t>& cluster_ids) const;

  /// Row indices of a single cluster.
  std::vector<size_t> RowsOfCluster(size_t cluster_id) const;
};

/// Quantize a node's data keeping the private assignment.
Result<QuantizedNode> QuantizeNode(size_t node_id, const std::string& name,
                                   const data::Dataset& local_data,
                                   const clustering::KMeansOptions&
                                       kmeans_options);

}  // namespace qens::selection

#endif  // QENS_SELECTION_NODE_PROFILE_H_
