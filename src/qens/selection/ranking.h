#ifndef QENS_SELECTION_RANKING_H_
#define QENS_SELECTION_RANKING_H_

/// \file ranking.h
/// The leader-side ranking computation (Section III-C, Eqs. 2–4):
///   h_ik  — overlap rate of cluster k of node i with the query (Eq. 2);
///   supporting clusters — those with h_ik >= epsilon;
///   p_i   = sum of h_ik over supporting clusters (Eq. 3);
///   r_i(q) = p_i * K'/K (Eq. 4), K' = number of supporting clusters.
/// Complexity is O(d) per cluster and O(K d) per node, independent of the
/// node's data size — the paper's "negligible calculations" claim, verified
/// by bench_x1_selection_scalability.

#include <vector>

#include "qens/common/status.h"
#include "qens/query/overlap.h"
#include "qens/query/range_query.h"
#include "qens/selection/node_profile.h"

namespace qens::selection {

/// Ranking configuration.
struct RankingOptions {
  /// Overlap threshold epsilon (> 0): cluster k supports query q iff
  /// h_ik >= epsilon.
  double epsilon = 0.3;
  query::OverlapMode overlap_mode = query::OverlapMode::kFaithful;
  /// Flaky-node penalty exponent (>= 0): the final ranking is scaled by
  /// SuccessRate()^reliability_weight from the profile's observed
  /// failure/straggle history. 0 (default) disables the penalty and
  /// reproduces the paper's Eq. 4 exactly.
  double reliability_weight = 0.0;
  /// Stale-digest discount exponent (>= 0): the final ranking is scaled by
  /// (1 / (1 + stale_rounds))^staleness_weight, where stale_rounds counts
  /// rounds since the node's data drifted away from its published digest
  /// without a cluster refresh (see fl/dynamic_fleet.h). 0 (default)
  /// disables the discount and reproduces the paper's Eq. 4 exactly.
  double staleness_weight = 0.0;

  /// \name Sublinear ranking accelerators (default off = paper-exact scan)
  /// Both paths are bitwise identical to the scan (see docs/INDEXING.md
  /// and selection/cluster_index.h); these flags trade memory for speed,
  /// never results. Plain fields here to avoid an include cycle — the
  /// structures live in cluster_index.h / ranking_cache.h.
  /// @{
  /// Rank through the shared cluster-rectangle spatial index when one is
  /// available (fl::Fleet::Create builds one iff this is set).
  bool use_index = false;
  /// Grid resolution of that index (bins per dimension).
  size_t index_bins_per_dim = 32;
  /// Memoize rankings per exact query rectangle in a leader-local LRU
  /// cache (quantized-key bucketing + exact-geometry verification).
  bool use_cache = false;
  size_t cache_capacity = 128;  ///< LRU entries per leader.
  double cache_quantum = 1e-3;  ///< Hash-key quantization cell size.
  /// @}
};

/// One cluster's score against a query.
struct ClusterScore {
  size_t cluster_id = 0;
  double overlap = 0.0;     ///< h_ik (Eq. 2).
  bool supporting = false;  ///< h_ik >= epsilon and the cluster is non-empty.
};

/// A node's complete ranking record against one query.
struct NodeRank {
  size_t node_id = 0;
  double potential = 0.0;        ///< p_i (Eq. 3).
  double ranking = 0.0;          ///< r_i(q) (Eq. 4).
  size_t supporting_clusters = 0;  ///< K'.
  size_t total_clusters = 0;       ///< K.
  double reliability = 1.0;        ///< Observed success rate (1 = clean).
  size_t stale_rounds = 0;         ///< Rounds of unpublished drift (0 = fresh).
  std::vector<ClusterScore> cluster_scores;  ///< One per cluster, in order.

  /// Ids of supporting clusters (the data-selectivity set).
  std::vector<size_t> SupportingClusterIds() const;

  /// Samples the node would train on under data selectivity (sum of
  /// supporting cluster sizes, given the profile it was computed from).
  size_t supporting_samples = 0;
  size_t total_samples = 0;
};

/// Rank one node against one query. Fails on dimensional mismatch between
/// the query and the node's cluster boundaries, or epsilon <= 0.
Result<NodeRank> RankNode(const NodeProfile& profile,
                          const query::RangeQuery& query,
                          const RankingOptions& options);

/// Rank every node and sort by descending r_i (ties broken by node id for
/// determinism).
Result<std::vector<NodeRank>> RankNodes(const std::vector<NodeProfile>& profiles,
                                        const query::RangeQuery& query,
                                        const RankingOptions& options);

}  // namespace qens::selection

#endif  // QENS_SELECTION_RANKING_H_
