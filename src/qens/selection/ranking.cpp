#include "qens/selection/ranking.h"

#include <algorithm>
#include <cmath>

#include "qens/common/string_util.h"

namespace qens::selection {

std::vector<size_t> NodeRank::SupportingClusterIds() const {
  std::vector<size_t> ids;
  for (const auto& cs : cluster_scores) {
    if (cs.supporting) ids.push_back(cs.cluster_id);
  }
  return ids;
}

Result<NodeRank> RankNode(const NodeProfile& profile,
                          const query::RangeQuery& query,
                          const RankingOptions& options) {
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument("RankNode: epsilon must be > 0");
  }
  if (options.reliability_weight < 0.0) {
    return Status::InvalidArgument(
        "RankNode: reliability_weight must be >= 0");
  }
  if (options.staleness_weight < 0.0) {
    return Status::InvalidArgument(
        "RankNode: staleness_weight must be >= 0");
  }
  if (profile.clusters.empty()) {
    return Status::InvalidArgument(
        StrFormat("RankNode: node %zu has no clusters", profile.node_id));
  }
  NodeRank rank;
  rank.node_id = profile.node_id;
  rank.total_clusters = profile.clusters.size();
  rank.total_samples = profile.total_samples;
  rank.cluster_scores.reserve(profile.clusters.size());

  for (size_t k = 0; k < profile.clusters.size(); ++k) {
    const auto& cluster = profile.clusters[k];
    ClusterScore score;
    score.cluster_id = k;
    if (cluster.size == 0) {
      // Empty cluster (possible after k > m quantization): never supports.
      score.overlap = 0.0;
      score.supporting = false;
    } else {
      QENS_ASSIGN_OR_RETURN(
          score.overlap,
          query::ComputeOverlapRate(query.region, cluster.bounds,
                                    options.overlap_mode));
      score.supporting = score.overlap >= options.epsilon;
    }
    if (score.supporting) {
      rank.potential += score.overlap;             // Eq. 3.
      ++rank.supporting_clusters;
      rank.supporting_samples += cluster.size;
    }
    rank.cluster_scores.push_back(score);
  }

  // Eq. 4: r_i = p_i * K'/K.
  rank.ranking = rank.potential *
                 static_cast<double>(rank.supporting_clusters) /
                 static_cast<double>(rank.total_clusters);

  // Flaky-node penalty: scale by the observed success rate. With the
  // default weight of 0 the factor is exactly 1 (pow(x, 0) == 1) and the
  // paper's ranking is untouched.
  rank.reliability = profile.reliability.SuccessRate();
  if (options.reliability_weight > 0.0) {
    rank.ranking *= std::pow(rank.reliability, options.reliability_weight);
  }

  // Stale-digest discount: a node whose data drifted s rounds ago without a
  // refresh is ranked on geometry that no longer matches its samples; decay
  // its score by (1/(1+s))^w. Weight 0 (default) leaves Eq. 4 untouched.
  rank.stale_rounds = profile.stale_rounds;
  if (options.staleness_weight > 0.0) {
    rank.ranking *=
        std::pow(1.0 / (1.0 + static_cast<double>(rank.stale_rounds)),
                 options.staleness_weight);
  }
  return rank;
}

Result<std::vector<NodeRank>> RankNodes(
    const std::vector<NodeProfile>& profiles, const query::RangeQuery& query,
    const RankingOptions& options) {
  std::vector<NodeRank> ranks;
  ranks.reserve(profiles.size());
  for (const auto& profile : profiles) {
    QENS_ASSIGN_OR_RETURN(NodeRank r, RankNode(profile, query, options));
    ranks.push_back(std::move(r));
  }
  std::stable_sort(ranks.begin(), ranks.end(),
                   [](const NodeRank& a, const NodeRank& b) {
                     if (a.ranking != b.ranking) return a.ranking > b.ranking;
                     return a.node_id < b.node_id;
                   });
  return ranks;
}

}  // namespace qens::selection
