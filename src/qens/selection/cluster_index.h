#ifndef QENS_SELECTION_CLUSTER_INDEX_H_
#define QENS_SELECTION_CLUSTER_INDEX_H_

/// \file cluster_index.h
/// Sublinear leader-side ranking: a cluster-rectangle spatial index.
///
/// The paper's leader ranks a query by scanning all N*K cluster
/// hyper-rectangles (O(N K d) per query, selection/ranking.*). This index
/// makes that sublinear in practice: an interval-per-dimension uniform grid
/// over the cluster bounding boxes yields, per query, the small set of
/// *candidate* clusters whose overlap rate could reach the support
/// threshold epsilon; only candidates get the exact Eq. 2 computation.
///
/// Epsilon-aware pruning contract (see docs/INDEXING.md). Eq. 2 averages
/// per-dimension ratios, so a cluster disjoint from the query in one
/// dimension can still score up to m/d from the m dimensions where the
/// boxes do meet — "boxes disjoint => skip" alone would be wrong. The
/// sound rule counts, per cluster, the number of dimensions `hits` whose
/// grid bins intersect the query's bins (a superset of true interval
/// intersection) and prunes iff (double)hits / (double)d < epsilon. This
/// is exact in IEEE terms: every per-dimension ratio lies in [0, 1] and is
/// exactly 0.0 for a disjoint dimension, a rounded sum of m values <= 1.0
/// never exceeds the representable integer m, and double division is
/// monotone — so the scan's h_ik can never round above hits/d. A pruned
/// cluster therefore provably fails `h_ik >= epsilon`, and the indexed
/// ranking is bitwise identical to the scan (see RankingsBitwiseEqual for
/// the precise contract on pruned clusters' score entries).
///
/// The index is immutable after Build and safe to share across threads
/// and sessions (fl::Fleet builds one when RankingOptions::use_index is
/// set). Per-query mutable state lives in a caller-owned Scratch.

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "qens/common/status.h"
#include "qens/query/hyper_rectangle.h"
#include "qens/query/range_query.h"
#include "qens/selection/node_profile.h"
#include "qens/selection/ranking.h"

namespace qens::selection {

/// Index construction knobs.
struct ClusterIndexOptions {
  /// Grid resolution per dimension (clamped into [1, 2^20]). More bins
  /// prune harder but cost memory proportional to entries * avg bins
  /// spanned per cluster.
  size_t bins_per_dim = 32;
  /// Fleet epoch this index was built against (see fl/query_session.h). A
  /// leader refuses to rank through an index whose epoch trails its live
  /// fleet_epoch — under online cluster refresh a stale index would
  /// silently serve rankings over the OLD geometry. 0 = static fleet.
  uint64_t epoch = 0;
};

/// Per-query pruning diagnostics (filled by RankNodesIndexed).
struct IndexQueryStats {
  size_t touched_entries = 0;     ///< Clusters whose bins met the query's.
  size_t candidate_clusters = 0;  ///< Clusters that got the exact Eq. 2.
  size_t candidate_nodes = 0;     ///< Nodes owning >= 1 candidate cluster.
  size_t pruned_clusters = 0;     ///< Indexed clusters skipped this query.
};

/// Immutable interval-per-dimension grid over cluster bounding boxes.
///
/// Build() indexes every non-empty cluster (empty clusters never score in
/// the scan either) and rejects structurally malformed profile sets — a
/// node with no clusters, or a non-empty cluster whose bounds box is
/// zero-dimensional, invalid (min > max), or disagrees with the common
/// dimensionality. The scan would fail every query against such a fleet,
/// so nothing rankable is lost; well-formed fleets (anything produced by
/// sim::EdgeEnvironment) always build.
class ClusterIndex {
 public:
  /// Reusable per-query scratch: epoch-stamped hit counters so a query
  /// resets in O(touched) instead of O(entries). One per ranking thread.
  struct Scratch {
    std::vector<uint64_t> entry_epoch;
    std::vector<uint32_t> entry_hits;      ///< Dims hit, current epoch.
    std::vector<uint32_t> entry_last_dim;  ///< Dedups within a dimension.
    std::vector<uint32_t> touched;         ///< Entry ids hit this epoch.
    std::vector<uint32_t> candidates;      ///< Ascending entry ids.
    uint64_t epoch = 0;

    void Prepare(size_t num_entries);
  };

  static Result<ClusterIndex> Build(const std::vector<NodeProfile>& profiles,
                                    const ClusterIndexOptions& options = {});

  size_t num_nodes() const { return num_nodes_; }
  /// Indexed (non-empty) clusters across all nodes.
  size_t num_entries() const { return entry_node_.size(); }
  /// Common dimensionality of the indexed boxes; 0 when num_entries() == 0.
  size_t dims() const { return dims_; }
  size_t bins_per_dim() const { return bins_per_dim_; }
  /// Fleet epoch the index was built against (ClusterIndexOptions::epoch).
  uint64_t epoch() const { return epoch_; }

  /// Profile-order position -> published node id / cluster count, as seen
  /// at Build time (used to detect a stale index).
  size_t node_id_at(size_t pos) const { return node_ids_[pos]; }
  size_t node_cluster_count(size_t pos) const {
    return node_cluster_counts_[pos];
  }
  /// True when node ids ascend strictly in profile order (the fleet
  /// layout); enables the sort-free candidate/zero merge in
  /// RankNodesIndexed.
  bool node_ids_strictly_increasing() const {
    return ids_strictly_increasing_;
  }

  /// Entry id -> (profile position, cluster id). Entry ids ascend in
  /// (node, cluster) lexicographic order by construction.
  size_t entry_node(size_t entry) const { return entry_node_[entry]; }
  size_t entry_cluster(size_t entry) const { return entry_cluster_[entry]; }

  /// Candidate (profile position, cluster id) pairs whose Eq. 2 overlap
  /// could reach `epsilon`, ascending lexicographic — a provable superset
  /// of the supporting set. Validates the query exactly like the ranking
  /// path. Intended for tests and diagnostics.
  Result<std::vector<std::pair<size_t, size_t>>> Candidates(
      const query::HyperRectangle& region, double epsilon,
      Scratch* scratch) const;

  /// Memory footprint of the grid structures in bytes (diagnostics).
  size_t GridBytes() const;

 private:
  friend Result<std::vector<NodeRank>> RankNodesIndexed(
      const ClusterIndex& index, const std::vector<NodeProfile>& profiles,
      const query::RangeQuery& query, const RankingOptions& options,
      Scratch* scratch, IndexQueryStats* stats);

  struct DimGrid {
    double lo = 0.0;         ///< Hull minimum of this dimension.
    double inv_width = 0.0;  ///< bins / hull span; 0 => everything in bin 0.
    size_t bins = 1;
    std::vector<uint32_t> start;  ///< CSR offsets, size bins + 1.
    std::vector<uint32_t> items;  ///< Entry ids bucketed by bin.
  };

  size_t BinOf(const DimGrid& grid, double x) const;

  /// Same Status (code and message) the scan would produce for this query
  /// against the indexed fleet, OK when the query is rankable. With zero
  /// indexed entries the scan never evaluates Eq. 2, so any query passes.
  Status ValidateQueryRegion(const query::HyperRectangle& region) const;

  /// Fills scratch->candidates (ascending entry ids) for a validated
  /// query region.
  void CollectCandidates(const query::HyperRectangle& region, double epsilon,
                         Scratch* scratch) const;

  size_t num_nodes_ = 0;
  size_t dims_ = 0;
  size_t bins_per_dim_ = 32;
  uint64_t epoch_ = 0;
  bool ids_strictly_increasing_ = true;
  std::vector<size_t> node_ids_;                ///< Profile order.
  std::vector<uint32_t> node_cluster_counts_;   ///< Profile order.
  std::vector<uint32_t> entry_node_;            ///< Entry -> profile pos.
  std::vector<uint32_t> entry_cluster_;         ///< Entry -> cluster id.
  std::vector<DimGrid> grids_;                  ///< One per dimension.
  std::vector<double> hit_bound_;  ///< hit_bound_[m] = (double)m / dims_.
};

/// Rank every node against `query` through the index: bitwise identical to
/// selection::RankNodes over the same profiles (same Status on error, same
/// order, same tie-breaks, same per-node numbers) under the contract
/// checked by RankingsBitwiseEqual. `profiles` must be the vector the
/// index was built from (same order, ids, and cluster counts — geometry
/// values are read from `profiles`, so a value-identical copy is fine);
/// a mismatch is an Internal error. `scratch` may be null (a temporary is
/// used); `stats` is optional.
Result<std::vector<NodeRank>> RankNodesIndexed(
    const ClusterIndex& index, const std::vector<NodeProfile>& profiles,
    const query::RangeQuery& query, const RankingOptions& options,
    ClusterIndex::Scratch* scratch = nullptr,
    IndexQueryStats* stats = nullptr);

/// The scan/index equality contract, bit-for-bit:
///  - identical node order (ranking desc, node id asc tie-break);
///  - per node: identical node_id, supporting/total cluster and sample
///    counts, and bitwise-identical potential, ranking and reliability;
///  - per cluster score: identical cluster ids and supporting flags;
///    supporting clusters' overlaps bitwise identical. A non-supporting
///    score may carry overlap 0.0 on the indexed side where the scan has
///    some h < epsilon (the pruned case — the index proved the exact value
///    cannot matter); any other overlap must be bitwise identical.
///  - a node the index pruned wholesale has an empty cluster_scores list;
///    that is allowed only when the scan found zero supporting clusters
///    for it (so SupportingClusterIds() agrees: both empty).
/// Everything downstream consumes (selection cuts, Eq. 7 weights,
/// data-selectivity sets, tie-breaks) is covered. Returns true when equal;
/// otherwise fills *diff (may be null) with the first difference.
bool RankingsBitwiseEqual(const std::vector<NodeRank>& scan,
                          const std::vector<NodeRank>& indexed,
                          const RankingOptions& options, std::string* diff);

}  // namespace qens::selection

#endif  // QENS_SELECTION_CLUSTER_INDEX_H_
