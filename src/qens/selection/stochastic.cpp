#include "qens/selection/stochastic.h"

// GCC 12 emits a false-positive -Wfree-nonheap-object from inlined
// std::vector reallocation at -O2 in this translation unit (GCC PR104475).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wfree-nonheap-object"
#endif

#include <algorithm>
#include <cassert>

#include "qens/common/string_util.h"

namespace qens::selection {

StochasticSelector::StochasticSelector(size_t num_nodes,
                                       StochasticOptions options)
    : options_(options), counts_(num_nodes, 0), rng_(options.seed) {
  assert(num_nodes > 0);
}

Result<std::vector<size_t>> StochasticSelector::Select(
    const std::vector<NodeRank>& ranks) {
  if (options_.alpha < 0.0 || options_.alpha > 1.0) {
    return Status::InvalidArgument("stochastic: alpha must be in [0, 1]");
  }
  if (options_.draw_l == 0) {
    return Status::InvalidArgument("stochastic: draw_l must be > 0");
  }
  const size_t n = counts_.size();
  const size_t draw = std::min(options_.draw_l, n);

  // Effectiveness term: normalized rankings (uniform when absent/zero).
  std::vector<double> effectiveness(n, 1.0 / static_cast<double>(n));
  if (!ranks.empty()) {
    std::vector<double> raw(n, -1.0);
    double total = 0.0;
    for (const auto& r : ranks) {
      if (r.node_id >= n) {
        return Status::OutOfRange(StrFormat(
            "stochastic: rank for node %zu but only %zu nodes", r.node_id,
            n));
      }
      raw[r.node_id] = r.ranking;
      total += r.ranking;
    }
    for (double v : raw) {
      if (v < 0.0) {
        return Status::InvalidArgument(
            "stochastic: ranks must cover every node");
      }
    }
    if (total > 0.0) {
      for (size_t i = 0; i < n; ++i) effectiveness[i] = raw[i] / total;
    }
  }

  // Fairness term: inverse participation, normalized.
  std::vector<double> fairness(n);
  double fair_total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    fairness[i] = 1.0 / (1.0 + static_cast<double>(counts_[i]));
    fair_total += fairness[i];
  }
  for (double& v : fairness) v /= fair_total;

  std::vector<double> weights(n);
  for (size_t i = 0; i < n; ++i) {
    weights[i] = options_.alpha * effectiveness[i] +
                 (1.0 - options_.alpha) * fairness[i];
  }

  // Weighted sampling without replacement.
  std::vector<size_t> selected;
  selected.reserve(draw);
  std::vector<double> pool = weights;
  for (size_t pick = 0; pick < draw; ++pick) {
    const size_t idx = rng_.WeightedIndex(pool);
    selected.push_back(idx);
    pool[idx] = 0.0;
  }
  for (size_t id : selected) ++counts_[id];
  std::sort(selected.begin(), selected.end());
  return selected;
}

void StochasticSelector::Reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
}

Result<double> JainFairnessIndex(const std::vector<size_t>& counts) {
  if (counts.empty()) {
    return Status::InvalidArgument("JainFairnessIndex: empty counts");
  }
  double sum = 0.0, sum_sq = 0.0;
  for (size_t c : counts) {
    const double v = static_cast<double>(c);
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0.0) return 1.0;  // Nobody selected yet: trivially fair.
  return (sum * sum) / (static_cast<double>(counts.size()) * sum_sq);
}

}  // namespace qens::selection
