// The Section II motivation, end to end: why node selection matters.
//
// Builds a homogeneous and a heterogeneous multi-site environment, runs the
// leader's pre-test (train locally, probe every node), prints the per-node
// probe losses and per-station regression fits, and shows the Table I vs
// Table II contrast: with homogeneous nodes any choice is fine; with
// heterogeneous nodes a random choice can be catastrophic.
//
// Usage: heterogeneous_clients [num_stations]   (default 8)

#include <cstdio>
#include <cstdlib>

#include "qens/data/air_quality_generator.h"
#include "qens/data/normalizer.h"
#include "qens/selection/game_theory.h"
#include "qens/tensor/stats.h"

using namespace qens;

namespace {

template <typename T>
T Die(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "error (%s): %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

void RunRegime(data::Heterogeneity regime, size_t num_stations) {
  std::printf("\n=== %s environment (%zu stations) ===\n",
              data::HeterogeneityName(regime), num_stations);

  data::AirQualityOptions options;
  options.num_stations = num_stations;
  options.samples_per_station = 1000;
  options.heterogeneity = regime;
  options.single_feature = true;
  options.seed = 31;
  data::AirQualityGenerator generator(options);
  std::vector<data::Dataset> stations =
      Die(generator.GenerateAll(), "generate");

  // Per-station regression fits (the Fig. 1/2 scatter structure).
  std::printf("%-22s %10s %12s %8s %18s\n", "station", "slope", "intercept",
              "R2", "TEMP range");
  for (size_t s = 0; s < stations.size(); ++s) {
    const stats::LinearFit fit =
        Die(stats::FitLine(stations[s].features().Col(0),
                           stations[s].TargetVector()),
            "fit");
    const query::HyperRectangle space =
        Die(stations[s].FeatureSpace(), "space");
    std::printf("%-22s %+10.3f %+12.2f %8.3f   [%6.1f, %6.1f]\n",
                generator.profiles()[s].name.c_str(), fit.slope,
                fit.intercept, fit.r_squared, space.dim(0).lo,
                space.dim(0).hi);
  }

  // Scale everything into the global min-max cube first: Table III's
  // learning rates assume normalized data (the federation layer does this
  // automatically; here we probe stations directly). Probe losses below
  // are mapped back to raw PM2.5 units.
  data::Dataset pooled = stations[0];
  for (size_t s = 1; s < stations.size(); ++s) {
    pooled = Die(pooled.Concat(stations[s]), "pool");
  }
  const data::Normalizer fnorm = Die(
      data::Normalizer::Fit(pooled.features(), data::ScalingKind::kMinMax),
      "feature norm");
  const data::Normalizer tnorm = Die(
      data::Normalizer::Fit(pooled.targets(), data::ScalingKind::kMinMax),
      "target norm");
  const double tscale = tnorm.scale()[0];
  const double denorm = tscale > 0 ? 1.0 / (tscale * tscale) : 1.0;
  std::vector<data::Dataset> scaled;
  for (const auto& s : stations) {
    scaled.push_back(Die(
        data::Dataset::Create(Die(fnorm.Transform(s.features()), "x"),
                              Die(tnorm.Transform(s.targets()), "y")),
        "scaled dataset"));
  }

  // The leader (station 0) probes everyone — the GT pre-round.
  selection::GameTheoryOptions gt;
  gt.model = ml::ModelKind::kLinearRegression;
  gt.loss_quantile = 0.5;
  std::vector<data::Dataset> others(scaled.begin() + 1, scaled.end());
  selection::GameTheorySelection probe = Die(
      selection::RunGameTheorySelection(scaled[0], others, gt), "probe");
  for (double& loss : probe.probe_loss) loss *= denorm;

  std::printf("\nleader(station 0) probe losses per node:");
  double lo = 1e300, hi = 0.0, sum = 0.0;
  for (size_t i = 0; i < probe.probe_loss.size(); ++i) {
    std::printf(" %.1f", probe.probe_loss[i]);
    lo = std::min(lo, probe.probe_loss[i]);
    hi = std::max(hi, probe.probe_loss[i]);
    sum += probe.probe_loss[i];
  }
  const double mean = sum / static_cast<double>(probe.probe_loss.size());
  std::printf("\nbest-match loss (all-node pre-test): %.1f\n", lo);
  std::printf("expected loss of a random pick:      %.1f\n", mean);
  std::printf("worst-case random pick:              %.1f\n", hi);
  std::printf("random/best ratio: %.1fx %s\n", mean / std::max(1e-9, lo),
              regime == data::Heterogeneity::kHomogeneous
                  ? "(homogeneous: near-tie — selection does not matter)"
                  : "(heterogeneous: selection matters a lot)");
}

}  // namespace

int main(int argc, char** argv) {
  size_t num_stations = 8;
  if (argc > 1) num_stations = static_cast<size_t>(std::atoi(argv[1]));
  if (num_stations < 3) {
    std::fprintf(stderr, "usage: %s [num_stations>=3]\n", argv[0]);
    return 2;
  }
  RunRegime(data::Heterogeneity::kHomogeneous, num_stations);
  RunRegime(data::Heterogeneity::kHeterogeneous, num_stations);
  return 0;
}
