// Config-driven experiment runner: the full evaluation pipeline
// parameterized by an INI file, so deployments can be explored without
// recompiling.
//
// Usage:
//   run_experiment <config.ini>
//   run_experiment --print-default     (emit a template config and exit)
//
// See examples/configs/paper.ini for the paper's Section V setup.

#include <cstdio>
#include <cstring>

#include "qens/common/config.h"
#include "qens/common/string_util.h"
#include "qens/fl/experiment.h"
#include "qens/ml/model_codec.h"
#include "qens/fl/query_server.h"
#include "qens/obs/export.h"
#include "qens/obs/metrics.h"
#include "qens/obs/round_record.h"

using namespace qens;

namespace {

constexpr char kDefaultConfig[] = R"(# qens experiment configuration
[data]
stations = 10
samples_per_station = 1500
heterogeneous = true
single_feature = true
seed = 2023

[quantization]
k = 5

[selection]
epsilon = 0.15
top_l = 3
use_threshold = false
psi = 0.5

[model]
kind = lr            ; lr | nn
epochs = 40
epochs_per_cluster = 15

[federation]
random_l = 3
test_fraction = 0.2
dropout_rate = 0.0
rounds = 1
seed = 7

[workload]
queries = 60
min_width_frac = 0.15
max_width_frac = 0.5
seed = 99

[faults]
enabled = false
seed = 1337
crash_rate = 0.0
crash_horizon = 20
dropout_rate = 0.0
straggler_rate = 0.0
straggler_slowdown_min = 2.0
straggler_slowdown_max = 8.0
message_loss_rate = 0.0
round_deadline_s = 0.0
max_send_attempts = 3
retry_backoff_s = 0.005
min_quorum_frac = 0.5
corruption_rate = 0.0        ; fraction of nodes that are Byzantine
corruption_kinds =           ; csv of nan|inf|scale|sign_flip|label_flip
corruption_gamma = 10.0      ; multiplier for scale attacks
corruption_active_rate = 1.0 ; per-round attack probability per attacker

[byzantine]
enabled = false
max_update_norm = 0.0        ; absolute L2 bound on updates (0 = off)
norm_mad_k = 0.0             ; reject norms > k MADs above median (0 = off)
holdout_loss_factor = 0.0    ; reject holdout loss > factor x median (0 = off)
holdout_max_rows = 256
quarantine_rounds = 0        ; rounds a rejected node sits out
aggregator = fedavg-parameters ; fedavg-parameters | coordinate-median |
                               ; trimmed-mean | norm-clipped-fedavg
trim_beta = 0.1
clip_norm = 1.0

[wire]
enabled = false          ; binary wire format + codec byte accounting
codec = raw              ; raw | q8 | q4 | q2 | topk (docs/WIRE_FORMAT.md)
top_k_fraction = 0.1     ; fraction of delta coords kept by topk
strong_seed_mix = false  ; 64-bit model-init seed mixer (collision-free)

[churn]
enabled = false          ; dynamic fleet: nodes leave and rejoin mid-stream
seed = 4242
rate = 0.0               ; fraction of nodes that churn
horizon = 64             ; rounds the presence schedule covers
min_down_rounds = 1      ; shortest absence
max_down_rounds = 4      ; longest absence
min_up_rounds = 2        ; shortest stay between absences
max_up_rounds = 8        ; longest stay between absences

[drift]
enabled = false          ; dynamic fleet: seeded per-round data drift
seed = 0
rate = 0.0               ; per-(node, round) drift event probability
feature_shift = 0.05     ; max offset as a fraction of each dim's span
refresh = false          ; online cluster refresh (docs/ROBUSTNESS.md)
refresh_threshold = 0.1  ; unpublished |offset|/span that trips a refresh

[metrics]
enabled = false
round_jsonl =        ; per-round records, one JSON object per line
round_csv =          ; per-round records as CSV
summary_json =       ; final counter/gauge/histogram snapshot

[serving]
sessions = 0             ; concurrent query sessions (0 = no serving phase)
workers = 0              ; session worker threads (0 or 1 = sequential)
queries_per_session = 8  ; workload queries each session serves (cycled)
)";

/// Export destinations parsed from the [metrics] section.
struct MetricsOutputs {
  bool enabled = false;
  std::string round_jsonl;
  std::string round_csv;
  std::string summary_json;
};

template <typename T>
T Die(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "error (%s): %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

Result<fl::ExperimentConfig> BuildConfig(const Config& ini) {
  fl::ExperimentConfig config;
  QENS_ASSIGN_OR_RETURN(int64_t stations, ini.GetInt("data.stations", 10));
  QENS_ASSIGN_OR_RETURN(int64_t samples,
                        ini.GetInt("data.samples_per_station", 1500));
  QENS_ASSIGN_OR_RETURN(bool heterogeneous,
                        ini.GetBool("data.heterogeneous", true));
  QENS_ASSIGN_OR_RETURN(bool single_feature,
                        ini.GetBool("data.single_feature", true));
  QENS_ASSIGN_OR_RETURN(int64_t data_seed, ini.GetInt("data.seed", 2023));
  config.data.num_stations = static_cast<size_t>(stations);
  config.data.samples_per_station = static_cast<size_t>(samples);
  config.data.heterogeneity = heterogeneous
                                  ? data::Heterogeneity::kHeterogeneous
                                  : data::Heterogeneity::kHomogeneous;
  config.data.single_feature = single_feature;
  config.data.seed = static_cast<uint64_t>(data_seed);

  QENS_ASSIGN_OR_RETURN(int64_t k, ini.GetInt("quantization.k", 5));
  config.federation.environment.kmeans.k = static_cast<size_t>(k);

  QENS_ASSIGN_OR_RETURN(config.federation.ranking.epsilon,
                        ini.GetDouble("selection.epsilon", 0.15));
  QENS_ASSIGN_OR_RETURN(int64_t top_l, ini.GetInt("selection.top_l", 3));
  config.federation.query_driven.top_l = static_cast<size_t>(top_l);
  QENS_ASSIGN_OR_RETURN(config.federation.query_driven.use_threshold,
                        ini.GetBool("selection.use_threshold", false));
  QENS_ASSIGN_OR_RETURN(config.federation.query_driven.psi,
                        ini.GetDouble("selection.psi", 0.5));

  QENS_ASSIGN_OR_RETURN(ml::ModelKind kind,
                        ml::ParseModelKind(ini.GetString("model.kind", "lr")));
  config.federation.hyper = ml::PaperHyperParams(kind);
  QENS_ASSIGN_OR_RETURN(int64_t epochs, ini.GetInt("model.epochs", 40));
  config.federation.hyper.epochs = static_cast<size_t>(epochs);
  QENS_ASSIGN_OR_RETURN(int64_t epc,
                        ini.GetInt("model.epochs_per_cluster", 15));
  config.federation.epochs_per_cluster = static_cast<size_t>(epc);

  QENS_ASSIGN_OR_RETURN(int64_t random_l,
                        ini.GetInt("federation.random_l", 3));
  config.federation.random_l = static_cast<size_t>(random_l);
  QENS_ASSIGN_OR_RETURN(config.federation.test_fraction,
                        ini.GetDouble("federation.test_fraction", 0.2));
  QENS_ASSIGN_OR_RETURN(config.federation.dropout_rate,
                        ini.GetDouble("federation.dropout_rate", 0.0));
  QENS_ASSIGN_OR_RETURN(int64_t fed_seed, ini.GetInt("federation.seed", 7));
  config.federation.seed = static_cast<uint64_t>(fed_seed);

  QENS_ASSIGN_OR_RETURN(int64_t queries, ini.GetInt("workload.queries", 60));
  config.workload.num_queries = static_cast<size_t>(queries);
  QENS_ASSIGN_OR_RETURN(config.workload.min_width_frac,
                        ini.GetDouble("workload.min_width_frac", 0.15));
  QENS_ASSIGN_OR_RETURN(config.workload.max_width_frac,
                        ini.GetDouble("workload.max_width_frac", 0.5));
  QENS_ASSIGN_OR_RETURN(int64_t wl_seed, ini.GetInt("workload.seed", 99));
  config.workload.seed = static_cast<uint64_t>(wl_seed);

  fl::FaultToleranceOptions& ft = config.federation.fault_tolerance;
  QENS_ASSIGN_OR_RETURN(ft.enabled, ini.GetBool("faults.enabled", false));
  QENS_ASSIGN_OR_RETURN(int64_t fault_seed, ini.GetInt("faults.seed", 1337));
  ft.faults.seed = static_cast<uint64_t>(fault_seed);
  QENS_ASSIGN_OR_RETURN(ft.faults.crash_rate,
                        ini.GetDouble("faults.crash_rate", 0.0));
  QENS_ASSIGN_OR_RETURN(int64_t crash_horizon,
                        ini.GetInt("faults.crash_horizon", 20));
  ft.faults.crash_horizon = static_cast<size_t>(crash_horizon);
  QENS_ASSIGN_OR_RETURN(ft.faults.dropout_rate,
                        ini.GetDouble("faults.dropout_rate", 0.0));
  QENS_ASSIGN_OR_RETURN(ft.faults.straggler_rate,
                        ini.GetDouble("faults.straggler_rate", 0.0));
  QENS_ASSIGN_OR_RETURN(ft.faults.straggler_slowdown_min,
                        ini.GetDouble("faults.straggler_slowdown_min", 2.0));
  QENS_ASSIGN_OR_RETURN(ft.faults.straggler_slowdown_max,
                        ini.GetDouble("faults.straggler_slowdown_max", 8.0));
  QENS_ASSIGN_OR_RETURN(ft.faults.message_loss_rate,
                        ini.GetDouble("faults.message_loss_rate", 0.0));
  QENS_ASSIGN_OR_RETURN(ft.round_deadline_s,
                        ini.GetDouble("faults.round_deadline_s", 0.0));
  QENS_ASSIGN_OR_RETURN(int64_t attempts,
                        ini.GetInt("faults.max_send_attempts", 3));
  ft.max_send_attempts = static_cast<size_t>(attempts);
  QENS_ASSIGN_OR_RETURN(ft.retry_backoff_s,
                        ini.GetDouble("faults.retry_backoff_s", 0.005));
  QENS_ASSIGN_OR_RETURN(ft.min_quorum_frac,
                        ini.GetDouble("faults.min_quorum_frac", 0.5));
  QENS_ASSIGN_OR_RETURN(ft.faults.corruption_rate,
                        ini.GetDouble("faults.corruption_rate", 0.0));
  QENS_ASSIGN_OR_RETURN(
      ft.faults.corruption_kinds,
      sim::ParseCorruptionKinds(ini.GetString("faults.corruption_kinds", "")));
  QENS_ASSIGN_OR_RETURN(ft.faults.corruption_gamma,
                        ini.GetDouble("faults.corruption_gamma", 10.0));
  QENS_ASSIGN_OR_RETURN(
      ft.faults.corruption_active_rate,
      ini.GetDouble("faults.corruption_active_rate", 1.0));

  fl::ByzantineOptions& byz = config.federation.byzantine;
  QENS_ASSIGN_OR_RETURN(byz.enabled, ini.GetBool("byzantine.enabled", false));
  QENS_ASSIGN_OR_RETURN(
      byz.validator.max_update_norm,
      ini.GetDouble("byzantine.max_update_norm", 0.0));
  QENS_ASSIGN_OR_RETURN(byz.validator.norm_mad_k,
                        ini.GetDouble("byzantine.norm_mad_k", 0.0));
  QENS_ASSIGN_OR_RETURN(
      byz.validator.holdout_loss_factor,
      ini.GetDouble("byzantine.holdout_loss_factor", 0.0));
  QENS_ASSIGN_OR_RETURN(int64_t holdout_rows,
                        ini.GetInt("byzantine.holdout_max_rows", 256));
  byz.validator.holdout_max_rows = static_cast<size_t>(holdout_rows);
  QENS_ASSIGN_OR_RETURN(int64_t quarantine,
                        ini.GetInt("byzantine.quarantine_rounds", 0));
  byz.quarantine_rounds = static_cast<size_t>(quarantine);
  QENS_ASSIGN_OR_RETURN(
      byz.aggregator,
      fl::ParseAggregationKind(
          ini.GetString("byzantine.aggregator", "fedavg-parameters")));
  QENS_ASSIGN_OR_RETURN(byz.trim_beta,
                        ini.GetDouble("byzantine.trim_beta", 0.1));
  QENS_ASSIGN_OR_RETURN(byz.clip_norm,
                        ini.GetDouble("byzantine.clip_norm", 1.0));

  ml::WireOptions& wire = config.federation.wire;
  QENS_ASSIGN_OR_RETURN(wire.enabled, ini.GetBool("wire.enabled", false));
  QENS_ASSIGN_OR_RETURN(
      wire.codec, ml::ParseWireCodecKind(ini.GetString("wire.codec", "raw")));
  QENS_ASSIGN_OR_RETURN(wire.top_k_fraction,
                        ini.GetDouble("wire.top_k_fraction", 0.1));
  QENS_ASSIGN_OR_RETURN(config.federation.strong_seed_mix,
                        ini.GetBool("wire.strong_seed_mix", false));

  // Dynamic-fleet layer: [churn] and [drift] each have their own enable so
  // churn-only and drift-only deployments read naturally; the layer itself
  // switches on when either does.
  fl::DynamicFleetOptions& dyn = config.federation.dynamic;
  QENS_ASSIGN_OR_RETURN(bool churn_enabled,
                        ini.GetBool("churn.enabled", false));
  QENS_ASSIGN_OR_RETURN(int64_t churn_seed, ini.GetInt("churn.seed", 4242));
  dyn.churn.seed = static_cast<uint64_t>(churn_seed);
  QENS_ASSIGN_OR_RETURN(dyn.churn.churn_rate,
                        ini.GetDouble("churn.rate", 0.0));
  QENS_ASSIGN_OR_RETURN(int64_t churn_horizon,
                        ini.GetInt("churn.horizon", 64));
  dyn.churn.churn_horizon = static_cast<size_t>(churn_horizon);
  QENS_ASSIGN_OR_RETURN(int64_t min_down,
                        ini.GetInt("churn.min_down_rounds", 1));
  dyn.churn.min_down_rounds = static_cast<size_t>(min_down);
  QENS_ASSIGN_OR_RETURN(int64_t max_down,
                        ini.GetInt("churn.max_down_rounds", 4));
  dyn.churn.max_down_rounds = static_cast<size_t>(max_down);
  QENS_ASSIGN_OR_RETURN(int64_t min_up, ini.GetInt("churn.min_up_rounds", 2));
  dyn.churn.min_up_rounds = static_cast<size_t>(min_up);
  QENS_ASSIGN_OR_RETURN(int64_t max_up, ini.GetInt("churn.max_up_rounds", 8));
  dyn.churn.max_up_rounds = static_cast<size_t>(max_up);
  if (!churn_enabled) dyn.churn.churn_rate = 0.0;
  QENS_ASSIGN_OR_RETURN(bool drift_enabled,
                        ini.GetBool("drift.enabled", false));
  QENS_ASSIGN_OR_RETURN(int64_t drift_seed, ini.GetInt("drift.seed", 0));
  dyn.drift.seed = static_cast<uint64_t>(drift_seed);
  QENS_ASSIGN_OR_RETURN(dyn.drift.rate, ini.GetDouble("drift.rate", 0.0));
  QENS_ASSIGN_OR_RETURN(dyn.drift.feature_shift,
                        ini.GetDouble("drift.feature_shift", 0.05));
  QENS_ASSIGN_OR_RETURN(dyn.refresh, ini.GetBool("drift.refresh", false));
  QENS_ASSIGN_OR_RETURN(dyn.refresh_threshold,
                        ini.GetDouble("drift.refresh_threshold", 0.1));
  if (!drift_enabled) dyn.drift.rate = 0.0;
  dyn.enabled = churn_enabled || drift_enabled;
  return config;
}

/// The default template doubles as the key schema: any key the template
/// does not know is a typo (wrong section or misspelled name), and typos
/// must not silently fall back to defaults.
Status ValidateConfigKeys(const Config& ini) {
  QENS_ASSIGN_OR_RETURN(const Config known, Config::Parse(kDefaultConfig));
  for (const std::string& key : ini.Keys()) {
    if (known.Has(key)) continue;
    const size_t dot = key.find('.');
    const std::string section =
        dot == std::string::npos ? "" : key.substr(0, dot);
    const std::string name =
        dot == std::string::npos ? key : key.substr(dot + 1);
    return Status::InvalidArgument(
        StrFormat("unknown config key '%s' in section [%s]", name.c_str(),
                  section.c_str()));
  }
  return Status::OK();
}

Result<MetricsOutputs> BuildMetricsOutputs(const Config& ini) {
  MetricsOutputs outputs;
  QENS_ASSIGN_OR_RETURN(outputs.enabled,
                        ini.GetBool("metrics.enabled", false));
  outputs.round_jsonl = ini.GetString("metrics.round_jsonl", "");
  outputs.round_csv = ini.GetString("metrics.round_csv", "");
  outputs.summary_json = ini.GetString("metrics.summary_json", "");
  // Export destinations imply collection.
  if (!outputs.round_jsonl.empty() || !outputs.round_csv.empty() ||
      !outputs.summary_json.empty()) {
    outputs.enabled = true;
  }
  return outputs;
}

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "error (%s): %s\n", what,
                 status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::strcmp(argv[1], "--print-default") == 0) {
    std::printf("%s", kDefaultConfig);
    return 0;
  }
  if (argc != 2) {
    std::fprintf(stderr,
                 "usage: %s <config.ini> | --print-default\n", argv[0]);
    return 2;
  }

  Config ini = Die(Config::Load(argv[1]), "load config");
  Check(ValidateConfigKeys(ini), "validate config");
  fl::ExperimentConfig config = Die(BuildConfig(ini), "build config");
  const int64_t rounds = Die(ini.GetInt("federation.rounds", 1), "rounds");
  const MetricsOutputs metrics = Die(BuildMetricsOutputs(ini), "metrics");
  if (metrics.enabled) obs::MetricsRegistry::Enable();

  std::printf("loaded %s (%zu keys)\n", argv[1], ini.size());
  std::printf(
      "environment: %zu stations x %zu samples (%s), K = %zu, %zu queries, "
      "model = %s, rounds = %lld\n",
      config.data.num_stations, config.data.samples_per_station,
      data::HeterogeneityName(config.data.heterogeneity),
      config.federation.environment.kmeans.k, config.workload.num_queries,
      ml::ModelKindName(config.federation.hyper.kind),
      static_cast<long long>(rounds));

  fl::ExperimentRunner runner =
      Die(fl::ExperimentRunner::Create(config), "build experiment");

  if (const auto* injector = runner.federation().fault_injector()) {
    std::printf("%s\n", injector->plan().Describe().c_str());
  }

  std::vector<obs::RoundRecord> round_records;
  if (rounds <= 1) {
    std::vector<fl::MechanismStats> rows;
    for (const fl::Mechanism& mechanism : fl::Figure7Mechanisms()) {
      std::printf("running %-10s ...\n", mechanism.label.c_str());
      rows.push_back(Die(runner.RunMechanism(mechanism), "run"));
    }
    std::printf("\n%s", fl::FormatMechanismTable(rows).c_str());
    round_records = runner.collected_round_records();
  } else {
    // Multi-round variant: the paper's mechanism only.
    stats::RunningStats loss, time;
    size_t run = 0, skipped = 0;
    for (const auto& q : runner.queries()) {
      auto outcome = runner.federation().RunQueryMultiRound(
          q, selection::PolicyKind::kQueryDriven, /*data_selectivity=*/true,
          static_cast<size_t>(rounds));
      if (!outcome.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     outcome.status().ToString().c_str());
        return 1;
      }
      for (auto& record : outcome->round_records) {
        round_records.push_back(std::move(record));
      }
      if (outcome->skipped) {
        ++skipped;
        continue;
      }
      ++run;
      loss.Add(outcome->loss_weighted);
      time.Add(outcome->sim_time_total + outcome->sim_time_comm);
    }
    std::printf(
        "\nquery-driven x %lld rounds: avg loss %.3f, avg sim time %.4fs "
        "(%zu run, %zu skipped)\n",
        static_cast<long long>(rounds), loss.mean(), time.mean(), run,
        skipped);
  }

  // Optional serving phase: schedule the workload as concurrent sessions
  // over the same fleet. Outcomes are bit-identical at every worker count;
  // round records are tagged with their 1-based session id.
  const int64_t sessions = Die(ini.GetInt("serving.sessions", 0), "serving");
  if (sessions > 0) {
    const int64_t workers = Die(ini.GetInt("serving.workers", 0), "serving");
    const int64_t per_session =
        Die(ini.GetInt("serving.queries_per_session", 8), "serving");
    const auto& pool = runner.queries();
    std::vector<fl::SessionSpec> specs;
    size_t next = 0;
    for (int64_t s = 0; s < sessions; ++s) {
      fl::SessionSpec spec;
      spec.rounds = static_cast<size_t>(rounds);
      for (int64_t q = 0; q < per_session && !pool.empty(); ++q) {
        spec.queries.push_back(pool[next % pool.size()]);
        ++next;
      }
      specs.push_back(std::move(spec));
    }
    fl::ServingOptions serving_options;
    serving_options.num_workers = static_cast<size_t>(workers);
    fl::QueryServer server =
        Die(fl::QueryServer::Create(runner.federation().fleet(),
                                    serving_options),
            "build query server");
    std::printf("\nserving %lld session(s) x %lld queries, %lld worker(s)\n",
                static_cast<long long>(sessions),
                static_cast<long long>(per_session),
                static_cast<long long>(workers));
    std::vector<fl::SessionResult> served =
        Die(server.Serve(specs), "serve sessions");
    size_t total_run = 0, total_skipped = 0, total_bytes = 0;
    for (const fl::SessionResult& result : served) {
      if (!result.status.ok()) {
        std::fprintf(stderr, "  session %llu failed: %s\n",
                     static_cast<unsigned long long>(result.session_id),
                     result.status.ToString().c_str());
      }
      std::printf(
          "  session %llu: %zu run, %zu skipped, %zu msgs, %zu bytes, "
          "%.4fs comm\n",
          static_cast<unsigned long long>(result.session_id),
          result.queries_run, result.queries_skipped, result.comm_messages,
          result.comm_bytes, result.comm_seconds);
      total_run += result.queries_run;
      total_skipped += result.queries_skipped;
      total_bytes += result.comm_bytes;
      for (const fl::QueryOutcome& outcome : result.outcomes) {
        for (const obs::RoundRecord& record : outcome.round_records) {
          round_records.push_back(record);
        }
      }
    }
    std::printf("served %zu queries (%zu skipped), %zu bytes total\n",
                total_run, total_skipped, total_bytes);
  }

  if (!metrics.round_jsonl.empty()) {
    Check(obs::WriteRoundRecordsJsonl(round_records, metrics.round_jsonl),
          "write round jsonl");
    std::printf("wrote %zu round records to %s\n", round_records.size(),
                metrics.round_jsonl.c_str());
  }
  if (!metrics.round_csv.empty()) {
    Check(obs::WriteRoundRecordsCsv(round_records, metrics.round_csv),
          "write round csv");
    std::printf("wrote %zu round records to %s\n", round_records.size(),
                metrics.round_csv.c_str());
  }
  if (!metrics.summary_json.empty()) {
    if (const auto* registry = obs::MetricsRegistry::Get()) {
      Check(obs::WriteMetricsSnapshotJson(registry->Snapshot(),
                                          metrics.summary_json),
            "write metrics summary");
      std::printf("wrote metrics summary to %s\n",
                  metrics.summary_json.c_str());
    }
  }
  return 0;
}
