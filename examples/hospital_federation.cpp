// The paper's Section IV-A example, end to end, in the healthcare domain
// the introduction motivates: hospitals hold private EHR-style records and
// cannot share them. An analytics query asks for a risk model over a
// specific AGE range ("just those with age e.g., between 20 and 50").
//
// Specialized hospitals (pediatric -> geriatric) hold different AGE
// regions: the query-driven mechanism engages exactly the hospitals whose
// cohorts cover the requested range and trains only on the matching
// clusters, while Random can engage a pediatric clinic for a geriatric
// query.
//
// Usage: hospital_federation [num_hospitals]   (default 8)

#include <cstdio>
#include <cstdlib>

#include "qens/data/hospital_generator.h"
#include "qens/fl/federation.h"

using namespace qens;

namespace {

template <typename T>
T Die(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "error (%s): %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main(int argc, char** argv) {
  size_t num_hospitals = 8;
  if (argc > 1) num_hospitals = static_cast<size_t>(std::atoi(argv[1]));
  if (num_hospitals < 2) {
    std::fprintf(stderr, "usage: %s [num_hospitals>=2]\n", argv[0]);
    return 2;
  }

  data::HospitalOptions data_options;
  data_options.num_hospitals = num_hospitals;
  data_options.patients_per_hospital = 1000;
  data_options.specialized = true;
  data::HospitalGenerator generator(data_options);

  std::printf("hospitals and their cohorts:\n");
  for (const auto& p : generator.profiles()) {
    std::printf("  %-16s age ~ N(%.0f, %.0f)\n", p.name.c_str(),
                p.age_center, p.age_spread);
  }

  fl::FederationOptions options;
  options.environment.kmeans.k = 5;
  // Eq. 2 averages the per-dimension overlaps, so dimensions the query
  // leaves unconstrained (BMI, SBP cover the full range -> h ~ 1) dilute
  // the AGE mismatch: a cluster entirely outside the AGE range still gets
  // h ~ 2/3. Calibrate epsilon to the number of constrained dimensions —
  // here only clusters with high AGE overlap should support the query.
  options.ranking.epsilon = 0.85;
  options.query_driven.top_l = 3;
  options.hyper = ml::PaperHyperParams(ml::ModelKind::kLinearRegression);
  options.hyper.epochs = 40;
  options.epochs_per_cluster = 15;
  options.random_l = 3;
  options.seed = 3;
  fl::Federation federation = Die(
      fl::Federation::Create(Die(generator.GenerateAll(), "generate"),
                             options),
      "federation");

  // The paper's example query: risk model for ages 20-50 (BMI/SBP
  // unconstrained — the full observed ranges).
  const query::HyperRectangle space = federation.RawDataSpace();
  query::RangeQuery q;
  q.id = 1;
  q.region = query::HyperRectangle(std::vector<query::Interval>{
      query::Interval(20.0, 50.0),  // AGE in [20, 50].
      space.dim(1),                 // BMI: any.
      space.dim(2),                 // SBP: any.
  });
  std::printf("\nquery: RISK model over AGE in [20, 50] (%zu test rows in "
              "region)\n",
              Die(federation.QueryRegionTestData(q), "test data")
                  .NumSamples());

  fl::QueryOutcome ours = Die(federation.RunQueryDriven(q), "ours");
  fl::QueryOutcome random = Die(
      federation.RunQuery(q, selection::PolicyKind::kRandom, false),
      "random");
  fl::QueryOutcome all = Die(
      federation.RunQuery(q, selection::PolicyKind::kAllNodes, false),
      "all");

  auto print_outcome = [&](const char* label, const fl::QueryOutcome& o) {
    if (o.skipped) {
      std::printf("%-14s skipped\n", label);
      return;
    }
    std::printf("%-14s loss %8.2f | hospitals:", label, o.loss_weighted);
    for (size_t id : o.selected_nodes) std::printf(" %zu", id);
    std::printf(" | %5zu patients (%.1f%%) | sim %.3fs\n", o.samples_used,
                100.0 * o.DataFractionOfAll(), o.sim_time_total);
  };
  print_outcome("query-driven", ours);
  print_outcome("random", random);
  print_outcome("all-nodes", all);

  std::printf(
      "\nThe query-driven mechanism engages the hospitals whose cohorts "
      "cover ages 20-50 and trains on their matching clusters only — no "
      "patient record ever leaves a hospital.\n");
  return 0;
}
