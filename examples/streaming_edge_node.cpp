// Streaming edge node: the paper's nodes collect data continuously
// (Section III-A). This example shows the node-side lifecycle:
//
//   1. quantize an initial data batch (Eq. 1) and publish the digests;
//   2. absorb a stream of new observations incrementally (running-mean
//      centroids, expanding boxes) — no re-clustering per sample;
//   3. watch how a fixed query's overlap/ranking changes as the node's
//      data drifts into (or out of) the query region;
//   4. rebuild when drift exceeds a threshold and compare digests.
//
// Usage: streaming_edge_node [stream_length]   (default 600)

#include <cstdio>
#include <cstdlib>

#include "qens/clustering/streaming_quantizer.h"
#include "qens/common/rng.h"
#include "qens/selection/ranking.h"

using namespace qens;

namespace {

template <typename T>
T Die(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "error (%s): %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

/// Rank the node's current digests against the query.
selection::NodeRank RankNow(const clustering::StreamingQuantizer& quantizer,
                            const query::RangeQuery& q) {
  selection::NodeProfile profile;
  profile.node_id = 0;
  profile.name = "streaming-node";
  profile.clusters = quantizer.summaries();
  profile.total_samples = quantizer.total_samples();
  selection::RankingOptions options;
  options.epsilon = 0.15;
  return Die(selection::RankNode(profile, q, options), "rank");
}

}  // namespace

int main(int argc, char** argv) {
  size_t stream_length = 600;
  if (argc > 1) stream_length = static_cast<size_t>(std::atoi(argv[1]));

  // Initial batch: temperatures around 0 (a cold season).
  Rng rng(77);
  Matrix initial(300, 1);
  for (double& v : initial.data()) v = rng.Gaussian(0.0, 3.0);

  clustering::KMeansOptions km;
  km.k = 5;  // The paper's K.
  km.seed = 3;
  clustering::StreamingQuantizer quantizer =
      Die(clustering::StreamingQuantizer::Create(initial, km), "quantize");

  // A fixed analytics query over the warm range [15, 30].
  query::RangeQuery q;
  q.id = 1;
  q.region = query::HyperRectangle(
      std::vector<query::Interval>{query::Interval(15.0, 30.0)});
  std::printf("query: %s\n", q.ToString().c_str());
  std::printf("initial data: %zu samples around 0 deg C\n\n",
              quantizer.total_samples());

  std::printf("%-8s %10s %8s %10s %8s %12s\n", "step", "samples", "drift",
              "ranking", "K'", "rebuilds");
  size_t rebuilds = 0;
  selection::NodeRank rank = RankNow(quantizer, q);
  std::printf("%-8d %10zu %7.1f%% %10.3f %8zu %12zu\n", 0,
              quantizer.total_samples(), 100.0 * quantizer.Drift(),
              rank.ranking, rank.supporting_clusters, rebuilds);

  // The season warms: new observations drift toward the query's range.
  for (size_t i = 1; i <= stream_length; ++i) {
    const double season =
        24.0 * static_cast<double>(i) / static_cast<double>(stream_length);
    Die(quantizer.Absorb({season + rng.Gaussian(0.0, 2.0)}), "absorb");

    if (quantizer.NeedsRebuild(0.3)) {
      // Re-quantize (Eq. 1) over everything collected so far.
      if (!quantizer.Rebuild().ok()) {
        std::fprintf(stderr, "rebuild failed\n");
        return 1;
      }
      ++rebuilds;
    }
    if (i % (stream_length / 6) == 0) {
      rank = RankNow(quantizer, q);
      std::printf("%-8zu %10zu %7.1f%% %10.3f %8zu %12zu\n", i,
                  quantizer.total_samples(), 100.0 * quantizer.Drift(),
                  rank.ranking, rank.supporting_clusters, rebuilds);
    }
  }

  std::printf(
      "\nAs warm-season data accumulates, clusters covering [15, 30] appear "
      "and the node's ranking for the query rises — the leader would now "
      "select this node where it previously would not.\n");
  return 0;
}
