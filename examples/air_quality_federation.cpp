// Full evaluation-scale example: the paper's Section V environment.
//
// Ten edge nodes hold multi-site air-quality data; a 200-query dynamic
// workload is issued; each query is executed under all four mechanisms the
// paper compares (GT, Random, Averaging = ours + Eq. 6, Weighted = ours +
// Eq. 7) and the Fig. 7-style summary table is printed.
//
// Usage:
//   air_quality_federation [num_stations] [num_queries] [lr|nn]
// Defaults: 10 stations, 60 queries, lr.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "qens/common/string_util.h"
#include "qens/fl/experiment.h"

using namespace qens;

namespace {

template <typename T>
T Die(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "error (%s): %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main(int argc, char** argv) {
  size_t num_stations = 10;
  size_t num_queries = 60;
  ml::ModelKind model = ml::ModelKind::kLinearRegression;
  if (argc > 1) num_stations = static_cast<size_t>(std::atoi(argv[1]));
  if (argc > 2) num_queries = static_cast<size_t>(std::atoi(argv[2]));
  if (argc > 3) model = Die(ml::ParseModelKind(argv[3]), "model kind");
  if (num_stations < 2 || num_queries == 0) {
    std::fprintf(stderr,
                 "usage: %s [num_stations>=2] [num_queries>0] [lr|nn]\n",
                 argv[0]);
    return 2;
  }

  fl::ExperimentConfig config;
  config.data.num_stations = num_stations;
  config.data.samples_per_station = 1200;
  config.data.heterogeneity = data::Heterogeneity::kHeterogeneous;
  config.data.single_feature = true;
  config.data.seed = 2023;

  config.federation.environment.kmeans.k = 5;
  config.federation.ranking.epsilon = 0.15;
  config.federation.query_driven.top_l = 3;
  config.federation.hyper = ml::PaperHyperParams(model);
  config.federation.hyper.epochs =
      model == ml::ModelKind::kLinearRegression ? 40 : 25;
  config.federation.epochs_per_cluster = 12;
  config.federation.random_l = 3;
  config.federation.seed = 7;

  config.workload.num_queries = num_queries;
  config.workload.seed = 99;

  std::printf(
      "environment: %zu stations x %zu samples, K = 5 clusters/node, "
      "%zu-query dynamic workload, model = %s\n",
      num_stations, config.data.samples_per_station, num_queries,
      ml::ModelKindName(model));

  fl::ExperimentRunner runner =
      Die(fl::ExperimentRunner::Create(config), "build experiment");

  std::printf("global data space: %s\n",
              runner.federation().RawDataSpace().ToString().c_str());
  std::printf(
      "profile exchange: %zu messages, %zu bytes total (O(1) per node)\n\n",
      runner.federation().environment().network().total_messages(),
      runner.federation().environment().network().total_bytes());

  std::vector<fl::MechanismStats> rows;
  for (const fl::Mechanism& mechanism : fl::Figure7Mechanisms()) {
    std::printf("running mechanism %-10s ...\n", mechanism.label.c_str());
    rows.push_back(Die(runner.RunMechanism(mechanism), "run mechanism"));
  }

  std::printf("\n%s", fl::FormatMechanismTable(rows).c_str());
  std::printf(
      "\n(ours = Averaging/Weighted: query-driven selection + "
      "supporting-cluster data selectivity)\n");
  return 0;
}
