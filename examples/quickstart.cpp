// Quickstart: the whole query-driven selection pipeline in ~80 lines.
//
//   1. Three edge nodes with private local datasets (synthetic air quality).
//   2. Each node quantizes its data (k-means, K = 5) and publishes only its
//      cluster boundaries.
//   3. An analytics query arrives as a TEMP range.
//   4. The leader ranks nodes by query/cluster overlap (Eqs. 2-4), selects
//      the top ones, and runs one federated round with data selectivity.
//   5. The aggregated answer is evaluated on held-out rows in the region.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <cstdlib>

#include "qens/data/air_quality_generator.h"
#include "qens/fl/federation.h"

using namespace qens;

namespace {

void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  // 1. Generate three heterogeneous stations (cold / mild / warm regions).
  data::AirQualityOptions data_options;
  data_options.num_stations = 3;
  data_options.samples_per_station = 1000;
  data_options.heterogeneity = data::Heterogeneity::kHeterogeneous;
  data_options.single_feature = true;
  data::AirQualityGenerator generator(data_options);
  Result<std::vector<data::Dataset>> nodes = generator.GenerateAll();
  Check(nodes.status());

  // 2. Build the federation: quantization, profile exchange, train/test
  //    split and leader-coordinated normalization all happen here.
  fl::FederationOptions options;
  options.environment.kmeans.k = 5;
  options.ranking.epsilon = 0.15;
  options.query_driven.top_l = 2;
  options.hyper = ml::PaperHyperParams(ml::ModelKind::kLinearRegression);
  options.hyper.epochs = 40;
  options.epochs_per_cluster = 15;
  Result<fl::Federation> federation =
      fl::Federation::Create(std::move(nodes).value(), options);
  Check(federation.status());

  // 3. An analytics query: "learn PM2.5 over TEMP in [5, 20] deg C".
  query::RangeQuery q;
  q.id = 1;
  q.region = query::HyperRectangle(
      std::vector<query::Interval>{query::Interval(5.0, 20.0)});
  std::printf("query: %s over global data space %s\n",
              q.ToString().c_str(),
              federation->RawDataSpace().ToString().c_str());

  // 4.+5. Rank, select, train, aggregate, evaluate.
  Result<fl::QueryOutcome> outcome = federation->RunQueryDriven(q);
  Check(outcome.status());
  if (outcome->skipped) {
    std::printf("query skipped: no data in the requested region\n");
    return 0;
  }

  std::printf("selected nodes:");
  for (size_t i = 0; i < outcome->selected_nodes.size(); ++i) {
    std::printf(" node-%zu (r=%.3f)", outcome->selected_nodes[i],
                outcome->selected_rankings[i]);
  }
  std::printf("\ntrained on %zu of %zu samples (%.1f%% of the federation)\n",
              outcome->samples_used, outcome->samples_all_nodes,
              100.0 * outcome->DataFractionOfAll());
  std::printf("test rows in region: %zu\n", outcome->test_rows);
  std::printf("loss — model averaging (Eq. 6): %.2f\n",
              outcome->loss_model_avg);
  std::printf("loss — weighted averaging (Eq. 7): %.2f\n",
              outcome->loss_weighted);
  std::printf("simulated time: %.3fs training + %.3fs communication\n",
              outcome->sim_time_total, outcome->sim_time_comm);
  return 0;
}
