// Faulty federation: running queries on an unreliable edge deployment.
//
//   1. Six edge nodes with synthetic air-quality data.
//   2. A seeded fault schedule: crashes, per-round dropouts, stragglers,
//      and lossy links — all drawn from ONE seed, so any failure scenario
//      is reproducible by rerunning with the same number.
//   3. A per-round deadline with retry/backoff and a 50% quorum: slow or
//      silent nodes are excluded from the round, and a below-quorum round
//      falls back to the previous global model instead of failing.
//   4. The same schedule is replayed from the seed to show determinism.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/faulty_federation [seed]

#include <cstdio>
#include <cstdlib>

#include "qens/data/air_quality_generator.h"
#include "qens/fl/federation.h"

using namespace qens;

namespace {

void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

Result<fl::Federation> BuildFederation(uint64_t fault_seed) {
  data::AirQualityOptions data_options;
  data_options.num_stations = 6;
  data_options.samples_per_station = 800;
  data_options.heterogeneity = data::Heterogeneity::kHeterogeneous;
  data_options.single_feature = true;
  data::AirQualityGenerator generator(data_options);
  QENS_ASSIGN_OR_RETURN(std::vector<data::Dataset> nodes,
                        generator.GenerateAll());

  fl::FederationOptions options;
  options.environment.kmeans.k = 5;
  options.ranking.epsilon = 0.15;
  options.query_driven.top_l = 4;
  options.hyper = ml::PaperHyperParams(ml::ModelKind::kLinearRegression);
  options.hyper.epochs = 30;
  options.epochs_per_cluster = 10;

  // The fault layer: everything below is drawn from `fault_seed`.
  auto& ft = options.fault_tolerance;
  ft.enabled = true;
  ft.faults.seed = fault_seed;
  ft.faults.crash_rate = 0.25;      // A quarter of the fleet will die...
  ft.faults.crash_horizon = 12;     // ...somewhere in the first 12 rounds.
  ft.faults.dropout_rate = 0.15;    // Transient per-round outages.
  ft.faults.straggler_rate = 0.3;   // Persistent slow nodes (2-6x).
  ft.faults.straggler_slowdown_min = 2.0;
  ft.faults.straggler_slowdown_max = 6.0;
  ft.faults.message_loss_rate = 0.1;
  ft.max_send_attempts = 3;
  ft.retry_backoff_s = 0.005;
  ft.min_quorum_frac = 0.5;
  return fl::Federation::Create(std::move(nodes), options);
}

struct RunSummary {
  size_t run = 0;
  size_t degraded = 0;
  size_t lost = 0;
  double loss_sum = 0.0;
  std::vector<size_t> survivors;  ///< Flattened per-query, per-round.
};

RunSummary RunWorkload(fl::Federation* federation, bool verbose) {
  RunSummary summary;
  for (int i = 0; i < 4; ++i) {
    query::RangeQuery q;
    q.id = static_cast<uint64_t>(i + 1);
    const auto& space = federation->RawDataSpace();
    const double lo = space.dim(0).lo, hi = space.dim(0).hi;
    const double width = (hi - lo) * 0.4;
    const double start = lo + (hi - lo) * 0.15 * static_cast<double>(i);
    q.region = query::HyperRectangle(std::vector<query::Interval>{
        query::Interval(start, std::min(hi, start + width))});

    Result<fl::QueryOutcome> outcome =
        federation->RunQueryMultiRound(q, selection::PolicyKind::kQueryDriven,
                                       /*data_selectivity=*/true,
                                       /*rounds=*/3);
    Check(outcome.status());
    if (outcome->skipped) {
      if (verbose) std::printf("query %d: skipped (no data in region)\n", i + 1);
      continue;
    }
    ++summary.run;
    summary.degraded += outcome->degraded_rounds;
    summary.lost += outcome->messages_lost;
    summary.loss_sum += outcome->loss_weighted;
    for (size_t s : outcome->round_survivors) summary.survivors.push_back(s);
    if (!verbose) continue;

    std::printf("query %d: engaged %zu nodes, survivors per round [", i + 1,
                outcome->selected_nodes.size());
    for (size_t r = 0; r < outcome->round_survivors.size(); ++r) {
      std::printf("%s%zu", r ? " " : "", outcome->round_survivors[r]);
    }
    std::printf("], loss %.2f\n", outcome->loss_weighted);
    if (!outcome->failed_nodes.empty()) {
      std::printf("  failed:");
      for (size_t id : outcome->failed_nodes) std::printf(" node-%zu", id);
      std::printf("\n");
    }
    if (!outcome->deadline_missed_nodes.empty()) {
      std::printf("  deadline-cut:");
      for (size_t id : outcome->deadline_missed_nodes) {
        std::printf(" node-%zu", id);
      }
      std::printf("\n");
    }
    if (outcome->degraded_rounds > 0) {
      std::printf("  %zu round(s) below quorum -> kept previous model\n",
                  outcome->degraded_rounds);
    }
    if (outcome->messages_lost > 0) {
      std::printf("  %zu message(s) lost in flight (%zu retransmissions)\n",
                  outcome->messages_lost, outcome->send_retries);
    }
  }
  return summary;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1337u;

  Result<fl::Federation> federation = BuildFederation(seed);
  Check(federation.status());

  std::printf("=== fault schedule (seed %llu) ===\n",
              static_cast<unsigned long long>(seed));
  std::printf("%s\n", federation->fault_injector()->plan().Describe().c_str());

  std::printf("\n=== workload: 4 queries x 3 rounds, deadline+quorum ===\n");
  RunSummary first = RunWorkload(&*federation, /*verbose=*/true);
  std::printf("\n%zu/4 queries answered, %zu degraded rounds, %zu messages "
              "lost\n", first.run, first.degraded, first.lost);

  // Reproduce the exact scenario from the seed alone.
  Result<fl::Federation> replay = BuildFederation(seed);
  Check(replay.status());
  RunSummary second = RunWorkload(&*replay, /*verbose=*/false);
  const bool identical = first.run == second.run &&
                         first.degraded == second.degraded &&
                         first.lost == second.lost &&
                         first.loss_sum == second.loss_sum &&
                         first.survivors == second.survivors;
  std::printf("\n=== replay from seed %llu ===\n",
              static_cast<unsigned long long>(seed));
  std::printf("identical fault trace and losses: %s\n",
              identical ? "yes" : "NO (bug!)");
  return identical ? 0 : 1;
}
