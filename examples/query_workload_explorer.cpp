// Workload explorer: generates a dynamic query workload over a multi-site
// environment and shows, per query, what the leader decides WITHOUT any
// training — rankings, supporting clusters, and the data each query would
// touch. Useful for tuning epsilon / top-l / query widths before paying
// for model training.
//
// Usage:
//   query_workload_explorer [num_queries] [epsilon] [top_l]
// Defaults: 12 queries, epsilon = 0.15, top_l = 3.

#include <cstdio>
#include <cstdlib>

#include "qens/data/air_quality_generator.h"
#include "qens/fl/leader.h"
#include "qens/query/selectivity_estimator.h"
#include "qens/query/workload_generator.h"
#include "qens/selection/node_profile.h"

using namespace qens;

namespace {

template <typename T>
T Die(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "error (%s): %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main(int argc, char** argv) {
  size_t num_queries = 12;
  double epsilon = 0.15;
  size_t top_l = 3;
  if (argc > 1) num_queries = static_cast<size_t>(std::atoi(argv[1]));
  if (argc > 2) epsilon = std::atof(argv[2]);
  if (argc > 3) top_l = static_cast<size_t>(std::atoi(argv[3]));
  if (num_queries == 0 || epsilon <= 0.0 || top_l == 0) {
    std::fprintf(stderr, "usage: %s [num_queries>0] [epsilon>0] [top_l>0]\n",
                 argv[0]);
    return 2;
  }

  // Environment: 8 heterogeneous stations, quantized with K = 5.
  data::AirQualityOptions options;
  options.num_stations = 8;
  options.samples_per_station = 1200;
  options.heterogeneity = data::Heterogeneity::kHeterogeneous;
  options.single_feature = true;
  options.seed = 17;
  data::AirQualityGenerator generator(options);
  std::vector<data::Dataset> stations =
      Die(generator.GenerateAll(), "generate");

  clustering::KMeansOptions km;
  km.k = 5;
  std::vector<selection::NodeProfile> profiles;
  query::HyperRectangle space = Die(stations[0].FeatureSpace(), "space");
  size_t total_samples = 0;
  for (size_t s = 0; s < stations.size(); ++s) {
    km.seed = 50 + s;
    profiles.push_back(Die(
        selection::BuildNodeProfile(s, generator.profiles()[s].name,
                                    stations[s], km),
        "profile"));
    space = Die(space.Hull(Die(stations[s].FeatureSpace(), "fs")), "hull");
    total_samples += stations[s].NumSamples();
  }

  selection::RankingOptions ranking;
  ranking.epsilon = epsilon;
  selection::QueryDrivenOptions selection_options;
  selection_options.top_l = top_l;
  fl::Leader leader(profiles, ranking, selection_options);

  query::WorkloadOptions workload_options;
  workload_options.num_queries = num_queries;
  workload_options.seed = 4242;
  query::WorkloadGenerator workload(space, workload_options);
  std::vector<query::RangeQuery> queries =
      Die(workload.Generate(), "workload");

  std::printf(
      "environment: %zu nodes, %zu samples total, K = 5, epsilon = %.2f, "
      "top-l = %zu\n",
      stations.size(), total_samples, epsilon, top_l);
  std::printf("global data space: %s\n\n", space.ToString().c_str());

  for (const auto& q : queries) {
    const fl::SelectionDecision decision = Die(leader.Decide(q), "decide");
    size_t supporting_samples = 0;
    for (const auto& rank : decision.selected) {
      supporting_samples += rank.supporting_samples;
    }
    // Leader-side row estimate from cluster digests alone (uniform-density
    // assumption) — how much data the query would actually touch.
    double estimated_rows = 0.0;
    for (const auto& profile : profiles) {
      const query::NodeSelectivityEstimate estimate =
          Die(query::EstimateNodeSelectivity(profile.clusters, q),
              "estimate");
      estimated_rows += estimate.estimated_rows;
    }
    std::printf("%-28s selected:", q.ToString().c_str());
    if (decision.selected.empty()) std::printf(" (none)");
    for (const auto& rank : decision.selected) {
      std::printf(" n%zu[r=%.2f K'=%zu]", rank.node_id, rank.ranking,
                  rank.supporting_clusters);
    }
    std::printf("  -> %zu supporting samples (%.1f%%), ~%.0f rows in region\n",
                supporting_samples,
                100.0 * static_cast<double>(supporting_samples) /
                    static_cast<double>(total_samples),
                estimated_rows);
  }

  std::printf(
      "\n(the leader computed all of this from cluster boundaries alone — "
      "no raw data left any node)\n");
  return 0;
}
